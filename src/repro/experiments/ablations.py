"""Ablations beyond the paper's tables.

Motivated directly by the paper's discussion:

* **Search strategies** — §II.B argues for the simplex kernel; we compare
  it against random search and coordinate descent (the "tune each knob
  separately" approach §V argues is insufficient) on the same scenario.
* **Extreme-value damping** — §III.A proposes (as future work) modifying
  the kernel so it "will avoid jumping to extreme values, but instead
  slowly approach them"; ``simplex-damped`` implements that and this
  ablation measures its effect on tuning stability.
* **Hybrid cluster tuning** — §III.B's stated future work: "using the
  parameter duplication method first, and then using separate tuning
  server for each group for fine-granularity tuning".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.cluster.topology import ClusterSpec
from repro.experiments.runner import ExperimentConfig, make_backend, remeasure
from repro.harmony.history import TuningHistory
from repro.model.base import PerformanceBackend, Scenario
from repro.tpcw.interactions import STANDARD_MIXES
from repro.tuning.session import ClusterTuningSession, make_scheme
from repro.util.rng import derive_seed
from repro.util.tables import Table

__all__ = [
    "StrategyAblation",
    "run_strategy_ablation",
    "run_damping_ablation",
    "run_hybrid_tuning",
    "HybridResult",
]


@dataclass(frozen=True)
class StrategyAblation:
    """Comparison of tuning kernels on one scenario."""

    baseline: float
    #: strategy name → (re-measured best WIPS, second-window stddev).
    results: Mapping[str, tuple[float, float]]
    histories: Mapping[str, TuningHistory]

    def to_table(self) -> Table:
        """Render the result as a paper-style table."""
        table = Table(
            "Ablation: search strategy (same scenario, same budget)",
            ["Strategy", "Best WIPS (re-measured)", "Improvement", "2nd-window stddev"],
        )
        table.add_row("none (default config)", f"{self.baseline:.1f}", "-", "-")
        for name, (wips, sd) in self.results.items():
            table.add_row(
                name, f"{wips:.1f}", f"{(wips / self.baseline - 1) * 100:+.1f}%", f"{sd:.1f}"
            )
        return table


def _tuning_run(
    backend: PerformanceBackend,
    scenario: Scenario,
    strategy: str,
    iterations: int,
    seed: int,
) -> ClusterTuningSession:
    session = ClusterTuningSession(
        backend,
        scenario,
        scheme=make_scheme(scenario, "default"),
        strategy=strategy,
        seed=seed,
    )
    session.run(iterations)
    return session


def run_strategy_ablation(
    config: ExperimentConfig | None = None,
    backend: PerformanceBackend | None = None,
    mix_name: str = "browsing",
    strategies: tuple[str, ...] = ("simplex", "random", "coordinate"),
) -> StrategyAblation:
    """Simplex vs baselines on the single-node-per-tier scenario."""
    cfg = config or ExperimentConfig()
    backend = backend or make_backend()
    scenario = Scenario(
        cluster=ClusterSpec.three_tier(1, 1, 1),
        mix=STANDARD_MIXES[mix_name],
        population=cfg.population,
    )
    probe = ClusterTuningSession(
        backend, scenario, seed=derive_seed(cfg.seed, "ablation-baseline")
    )
    baseline = probe.measure_baseline(iterations=cfg.baseline_iterations)
    results: dict[str, tuple[float, float]] = {}
    histories: dict[str, TuningHistory] = {}
    for strategy in strategies:
        session = _tuning_run(
            backend,
            scenario,
            strategy,
            cfg.iterations,
            derive_seed(cfg.seed, "ablation-strategy", strategy),
        )
        best = session.history.best_configuration()
        stats = remeasure(
            backend,
            scenario,
            best,
            seed=derive_seed(cfg.seed, "ablation-remeasure", strategy),
            iterations=cfg.baseline_iterations,
        )
        window = session.history.window_stats(cfg.window_start())
        results[strategy] = (stats.mean, window.stddev)
        histories[strategy] = session.history
    return StrategyAblation(
        baseline=baseline.window_stats(0).mean,
        results=results,
        histories=histories,
    )


def run_damping_ablation(
    config: ExperimentConfig | None = None,
    backend: PerformanceBackend | None = None,
    mix_name: str = "browsing",
) -> StrategyAblation:
    """Plain simplex vs extreme-value-damped simplex (paper's future work)."""
    return run_strategy_ablation(
        config, backend, mix_name, strategies=("simplex", "simplex-damped")
    )


@dataclass(frozen=True)
class HybridResult:
    """Hybrid cluster tuning: duplication first, partitioning after."""

    baseline: float
    duplication_best: float
    hybrid_best: float
    history_phase1: TuningHistory
    history_phase2: TuningHistory

    def to_table(self) -> Table:
        """Render the result as a paper-style table."""
        table = Table(
            "Ablation: hybrid cluster tuning (duplication -> partitioning)",
            ["Stage", "Best WIPS (re-measured)", "Improvement vs no tuning"],
        )
        table.add_row("none (default config)", f"{self.baseline:.1f}", "-")
        table.add_row(
            "phase 1: duplication",
            f"{self.duplication_best:.1f}",
            f"{(self.duplication_best / self.baseline - 1) * 100:+.1f}%",
        )
        table.add_row(
            "phase 2: + partitioning",
            f"{self.hybrid_best:.1f}",
            f"{(self.hybrid_best / self.baseline - 1) * 100:+.1f}%",
        )
        return table


def run_hybrid_tuning(
    config: ExperimentConfig | None = None,
    backend: PerformanceBackend | None = None,
    mix_name: str = "shopping",
    work_lines: int = 2,
) -> HybridResult:
    """§III.B future work: coarse duplication pass, then per-line polish."""
    cfg = config or ExperimentConfig()
    backend = backend or make_backend()
    cluster = ClusterSpec.three_tier(2, 2, 2)
    scenario = Scenario(
        cluster=cluster,
        mix=STANDARD_MIXES[mix_name],
        population=cfg.cluster_population,
    )
    probe = ClusterTuningSession(
        backend, scenario, seed=derive_seed(cfg.seed, "hybrid-baseline")
    )
    baseline = probe.measure_baseline(iterations=cfg.baseline_iterations)

    # Phase 1: duplication.
    phase1 = ClusterTuningSession(
        backend,
        scenario,
        scheme=make_scheme(scenario, "duplication"),
        seed=derive_seed(cfg.seed, "hybrid-p1"),
    )
    phase1.run(cfg.iterations // 2)
    coarse = phase1.history.best_configuration()
    coarse_stats = remeasure(
        backend, scenario, coarse,
        seed=derive_seed(cfg.seed, "hybrid-p1-best"),
        iterations=cfg.baseline_iterations,
    )

    # Phase 2: partitioning, each line's search seeded from the coarse best.
    scheme2 = make_scheme(scenario, "partitioning", work_lines=work_lines)
    phase2 = ClusterTuningSession(
        backend,
        scenario,
        scheme=scheme2,
        seed=derive_seed(cfg.seed, "hybrid-p2"),
    )
    for group in scheme2.groups:
        phase2.server.unregister(group.group_id)
        phase2.server.register(
            group.group_id,
            group.space,
            strategy="simplex",
            start=coarse.subset(group.space.names),
        )
    phase2.run(cfg.iterations // 2)
    fine = phase2.history.best_configuration()
    fine_stats = remeasure(
        backend, phase2.scenario, fine,
        seed=derive_seed(cfg.seed, "hybrid-p2-best"),
        iterations=cfg.baseline_iterations,
    )

    return HybridResult(
        baseline=baseline.window_stats(0).mean,
        duplication_best=coarse_stats.mean,
        hybrid_best=max(fine_stats.mean, coarse_stats.mean),
        history_phase1=phase1.history,
        history_phase2=phase2.history,
    )
