"""Price/performance: which cluster layout serves the workload cheapest?

An extension experiment built on TPC-W's own Dollars/WIPS metric (§II.C).
For a fixed machine budget, sweep the assignment of machines to tiers,
measure each layout's (tuned-default) throughput under a mix, and report
$/WIPS — quantifying the paper's point that node *roles* matter: the same
hardware, differently assigned, differs severalfold in delivered capacity
(exactly why §IV's automatic reconfiguration pays).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.cluster.pricing import PricingModel
from repro.cluster.topology import ClusterSpec
from repro.experiments.runner import ExperimentConfig, make_backend, remeasure
from repro.model.base import PerformanceBackend, Scenario
from repro.tpcw.interactions import STANDARD_MIXES
from repro.util.rng import derive_seed
from repro.util.tables import Table

__all__ = ["LayoutRow", "PricePerformanceResult", "run"]


@dataclass(frozen=True)
class LayoutRow:
    """One evaluated layout."""

    proxies: int
    apps: int
    dbs: int
    wips: float
    cost: float
    dollars_per_wips: float

    @property
    def label(self) -> str:
        """Human-readable layout name, e.g. ``3p/2a/1d``."""
        return f"{self.proxies}p/{self.apps}a/{self.dbs}d"


@dataclass(frozen=True)
class PricePerformanceResult:
    """All layouts for one mix, best (cheapest per WIPS) first."""

    mix_name: str
    population: int
    rows: tuple[LayoutRow, ...]

    def best(self) -> LayoutRow:
        """The layout with the lowest $/WIPS."""
        return min(self.rows, key=lambda r: r.dollars_per_wips)

    def worst(self) -> LayoutRow:
        """The layout with the highest $/WIPS."""
        return max(self.rows, key=lambda r: r.dollars_per_wips)

    def to_table(self) -> Table:
        """Render the result as a paper-style table."""
        table = Table(
            f"Price/performance across layouts — {self.mix_name} mix, "
            f"N={self.population}",
            ["Layout", "WIPS", "Cluster cost", "$/WIPS"],
        )
        for row in sorted(self.rows, key=lambda r: r.dollars_per_wips):
            table.add_row(
                row.label,
                f"{row.wips:.1f}",
                f"${row.cost:,.0f}",
                f"${row.dollars_per_wips:,.2f}",
            )
        return table


def run(
    config: ExperimentConfig | None = None,
    backend: PerformanceBackend | None = None,
    mix_name: str = "ordering",
    machines: int = 6,
    db_nodes: int = 2,
    pricing: PricingModel | None = None,
    layouts: Sequence[tuple[int, int]] | None = None,
) -> PricePerformanceResult:
    """Evaluate every split of ``machines`` front nodes into proxy/app tiers.

    The database tier is held at ``db_nodes`` (it is stateful — the §IV
    algorithm never reassigns it either); the remaining machines split
    between the proxy and application tiers in every feasible way.
    """
    cfg = config or ExperimentConfig()
    backend = backend or make_backend()
    pricing = pricing or PricingModel()
    if layouts is None:
        layouts = [(p, machines - p) for p in range(1, machines)]

    rows = []
    for proxies, apps in layouts:
        cluster = ClusterSpec.three_tier(proxies, apps, db_nodes)
        scenario = Scenario(
            cluster=cluster,
            mix=STANDARD_MIXES[mix_name],
            population=cfg.cluster_population,
        )
        stats = remeasure(
            backend,
            scenario,
            cluster.default_configuration(),
            seed=derive_seed(cfg.seed, "price", mix_name, proxies, apps),
            iterations=max(cfg.baseline_iterations // 2, 3),
        )
        cost = pricing.cluster_cost(cluster)
        rows.append(
            LayoutRow(
                proxies=proxies,
                apps=apps,
                dbs=db_nodes,
                wips=stats.mean,
                cost=cost,
                dollars_per_wips=pricing.dollars_per_wips(cluster, stats.mean),
            )
        )
    return PricePerformanceResult(
        mix_name=mix_name, population=cfg.cluster_population, rows=tuple(rows)
    )
