"""Figure 4 (and the §III.A narrative): per-workload tuning and the
cross-workload configuration matrix.

For each of the three TPC-W mixes the driver runs a full Active Harmony
tuning session (default method, all 23 parameters of the three servers) on
the single-node-per-tier cluster, exactly as §III.A does.  It then applies
each workload's best configuration to the other two workloads — the paper's
Figure 4 — demonstrating that "there is no universal configuration good for
all kinds of workloads".

Reported per mix:

* baseline (default configuration) mean WIPS,
* the best tuned configuration's *re-measured* WIPS and improvement,
* the §III.A window statistics: fraction of second-100 iterations beating
  the default, and the mean improvement over that window,
* the 3×3 cross-application matrix.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.cluster.topology import ClusterSpec
from repro.experiments.runner import ExperimentConfig, make_backend, remeasure
from repro.harmony.history import TuningHistory
from repro.harmony.parameter import Configuration
from repro.model.base import PerformanceBackend, Scenario
from repro.tpcw.interactions import STANDARD_MIXES
from repro.tuning.session import ClusterTuningSession, make_scheme
from repro.util.rng import derive_seed
from repro.util.tables import Table

__all__ = ["Fig4Result", "run"]

MIX_ORDER = ("browsing", "shopping", "ordering")


@dataclass(frozen=True)
class Fig4Result:
    """Everything Figure 4 / Table 3 / the §III.A text report."""

    baselines: Mapping[str, float]
    best_configs: Mapping[str, Configuration]
    #: cross[(config_mix, applied_mix)] = re-measured WIPS.
    cross: Mapping[tuple[str, str], float]
    histories: Mapping[str, TuningHistory]
    #: Fraction of second-window iterations beating the baseline, per mix.
    fraction_above: Mapping[str, float]
    #: Mean relative improvement over the second window, per mix.
    window_improvement: Mapping[str, float]

    def improvement(self, mix: str) -> float:
        """Best-config improvement over the default configuration."""
        return self.cross[(mix, mix)] / self.baselines[mix] - 1.0

    def to_matrix_table(self) -> Table:
        """The Figure 4 matrix: best configs applied across workloads."""
        table = Table(
            "Figure 4: best configuration per workload applied to each workload (WIPS)",
            ["Applied to \\ Tuned for", *MIX_ORDER, "default config"],
        )
        for applied in MIX_ORDER:
            table.add_row(
                applied,
                *(f"{self.cross[(cfg, applied)]:.1f}" for cfg in MIX_ORDER),
                f"{self.baselines[applied]:.1f}",
            )
        return table

    def to_improvement_table(self) -> Table:
        """The small table under Figure 4 (improvement vs default)."""
        table = Table(
            "Figure 4 (bottom): improvement of the best configuration vs default",
            ["", *MIX_ORDER],
        )
        table.add_row(
            "Improvement vs default",
            *(f"{self.improvement(m) * 100:.0f}%" for m in MIX_ORDER),
        )
        table.add_row(
            "Second-window iterations beating default",
            *(f"{self.fraction_above[m] * 100:.0f}%" for m in MIX_ORDER),
        )
        table.add_row(
            "Mean second-window improvement",
            *(f"{self.window_improvement[m] * 100:.1f}%" for m in MIX_ORDER),
        )
        return table


def run(
    config: ExperimentConfig | None = None,
    backend: PerformanceBackend | None = None,
) -> Fig4Result:
    """Run the §III.A / Figure 4 experiment."""
    cfg = config or ExperimentConfig()
    backend = backend or make_backend()
    cluster = ClusterSpec.three_tier(1, 1, 1)

    baselines: dict[str, float] = {}
    best_configs: dict[str, Configuration] = {}
    histories: dict[str, TuningHistory] = {}
    fraction_above: dict[str, float] = {}
    window_improvement: dict[str, float] = {}

    for mix_name in MIX_ORDER:
        scenario = Scenario(
            cluster=cluster,
            mix=STANDARD_MIXES[mix_name],
            population=cfg.population,
        )
        seed = derive_seed(cfg.seed, "fig4", mix_name)
        session = ClusterTuningSession(
            backend,
            scenario,
            scheme=make_scheme(scenario, "default"),
            seed=seed,
        )
        baseline = session.measure_baseline(
            iterations=cfg.baseline_iterations
        ).window_stats(0)
        session.run(cfg.iterations)
        history = session.history

        baselines[mix_name] = baseline.mean
        best_configs[mix_name] = history.best_configuration()
        histories[mix_name] = history
        start = cfg.window_start()
        fraction_above[mix_name] = history.fraction_above(baseline.mean, start)
        window = history.window_stats(start)
        window_improvement[mix_name] = window.mean / baseline.mean - 1.0

    cross: dict[tuple[str, str], float] = {}
    for config_mix in MIX_ORDER:
        for applied_mix in MIX_ORDER:
            scenario = Scenario(
                cluster=cluster,
                mix=STANDARD_MIXES[applied_mix],
                population=cfg.population,
            )
            stats = remeasure(
                backend,
                scenario,
                best_configs[config_mix],
                seed=derive_seed(cfg.seed, "fig4-cross", config_mix, applied_mix),
                iterations=cfg.baseline_iterations,
            )
            cross[(config_mix, applied_mix)] = stats.mean

    return Fig4Result(
        baselines=baselines,
        best_configs=best_configs,
        cross=cross,
        histories=histories,
        fraction_above=fraction_above,
        window_improvement=window_improvement,
    )
