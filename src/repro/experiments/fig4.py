"""Figure 4 (and the §III.A narrative): per-workload tuning and the
cross-workload configuration matrix.

For each of the three TPC-W mixes the driver runs a full Active Harmony
tuning session (default method, all 23 parameters of the three servers) on
the single-node-per-tier cluster, exactly as §III.A does.  It then applies
each workload's best configuration to the other two workloads — the paper's
Figure 4 — demonstrating that "there is no universal configuration good for
all kinds of workloads".

Reported per mix:

* baseline (default configuration) mean WIPS,
* the best tuned configuration's *re-measured* WIPS and improvement,
* the §III.A window statistics: fraction of second-100 iterations beating
  the default, and the mean improvement over that window,
* the 3×3 cross-application matrix.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional

from repro.cluster.topology import ClusterSpec
from repro.experiments.runner import (
    ExperimentConfig,
    make_executor,
    make_backend,
    merge_cache_stats,
    remeasure,
)
from repro.harmony.history import TuningHistory
from repro.harmony.parameter import Configuration
from repro.model.base import PerformanceBackend, Scenario
from repro.parallel import ParallelExecutor, RunSpec, track_backend
from repro.tpcw.interactions import STANDARD_MIXES
from repro.tuning.session import ClusterTuningSession, make_scheme
from repro.util.rng import derive_seed
from repro.util.tables import Table

__all__ = ["Fig4Result", "run"]

MIX_ORDER = ("browsing", "shopping", "ordering")


@dataclass(frozen=True)
class Fig4Result:
    """Everything Figure 4 / Table 3 / the §III.A text report."""

    baselines: Mapping[str, float]
    best_configs: Mapping[str, Configuration]
    #: cross[(config_mix, applied_mix)] = re-measured WIPS.
    cross: Mapping[tuple[str, str], float]
    histories: Mapping[str, TuningHistory]
    #: Fraction of second-window iterations beating the baseline, per mix.
    fraction_above: Mapping[str, float]
    #: Mean relative improvement over the second window, per mix.
    window_improvement: Mapping[str, float]
    #: Measurement/solution cache counters summed over all runs (None when
    #: caching was disabled).  Diagnostic only — excluded from
    #: :meth:`canonical_dict`, since counters depend on the jobs setting
    #: while the numbers above never do.
    cache_stats: Optional[Mapping[str, float]] = field(default=None, compare=False)

    def canonical_dict(self) -> dict:
        """The result's numbers in a JSON-stable form.

        Serializing this dict byte-compares runs across ``--jobs``
        settings; cache counters are deliberately excluded (a worker pool
        splits the caches, so the counters — unlike the results — depend
        on the execution layout).
        """
        return {
            "baselines": {m: self.baselines[m] for m in MIX_ORDER},
            "best_configs": {
                m: dict(sorted(self.best_configs[m].items())) for m in MIX_ORDER
            },
            "cross": {
                f"{cfg}->{applied}": self.cross[(cfg, applied)]
                for cfg in MIX_ORDER
                for applied in MIX_ORDER
            },
            "fraction_above": {m: self.fraction_above[m] for m in MIX_ORDER},
            "window_improvement": {
                m: self.window_improvement[m] for m in MIX_ORDER
            },
            "history_wips": {
                m: [r.performance for r in self.histories[m].records]
                for m in MIX_ORDER
            },
        }

    def improvement(self, mix: str) -> float:
        """Best-config improvement over the default configuration."""
        return self.cross[(mix, mix)] / self.baselines[mix] - 1.0

    def to_matrix_table(self) -> Table:
        """The Figure 4 matrix: best configs applied across workloads."""
        table = Table(
            "Figure 4: best configuration per workload applied to each workload (WIPS)",
            ["Applied to \\ Tuned for", *MIX_ORDER, "default config"],
        )
        for applied in MIX_ORDER:
            table.add_row(
                applied,
                *(f"{self.cross[(cfg, applied)]:.1f}" for cfg in MIX_ORDER),
                f"{self.baselines[applied]:.1f}",
            )
        return table

    def to_improvement_table(self) -> Table:
        """The small table under Figure 4 (improvement vs default)."""
        table = Table(
            "Figure 4 (bottom): improvement of the best configuration vs default",
            ["", *MIX_ORDER],
        )
        table.add_row(
            "Improvement vs default",
            *(f"{self.improvement(m) * 100:.0f}%" for m in MIX_ORDER),
        )
        table.add_row(
            "Second-window iterations beating default",
            *(f"{self.fraction_above[m] * 100:.0f}%" for m in MIX_ORDER),
        )
        table.add_row(
            "Mean second-window improvement",
            *(f"{self.window_improvement[m] * 100:.1f}%" for m in MIX_ORDER),
        )
        return table


def _tune_mix(
    mix_name: str,
    cfg: ExperimentConfig,
    backend: PerformanceBackend | None,
) -> dict:
    """Stage-1 worker: tune one workload mix end to end.

    Self-contained and picklable; builds its own backend when none is
    shared (worker processes cannot share one).  All randomness comes from
    the seed derived here, so the result is identical wherever it runs.
    """
    backend = backend or make_backend(cfg)
    cluster = ClusterSpec.three_tier(1, 1, 1)
    scenario = Scenario(
        cluster=cluster,
        mix=STANDARD_MIXES[mix_name],
        population=cfg.population,
    )
    seed = derive_seed(cfg.seed, "fig4", mix_name)
    session = ClusterTuningSession(
        backend,
        scenario,
        scheme=make_scheme(scenario, "default"),
        seed=seed,
        speculate=cfg.speculate,
    )
    baseline = session.measure_baseline(
        iterations=cfg.baseline_iterations
    ).window_stats(0)
    session.run(cfg.iterations)
    history = session.history
    start = cfg.window_start()
    window = history.window_stats(start)
    return {
        "baseline": baseline.mean,
        "best_config": history.best_configuration(),
        "history": history,
        "fraction_above": history.fraction_above(baseline.mean, start),
        "window_improvement": window.mean / baseline.mean - 1.0,
    }


def _cross_cell(
    config_mix: str,
    applied_mix: str,
    best_config: Configuration,
    cfg: ExperimentConfig,
    backend: PerformanceBackend | None,
) -> dict:
    """Stage-2 worker: re-measure one best config under one applied mix."""
    backend = backend or make_backend(cfg)
    cluster = ClusterSpec.three_tier(1, 1, 1)
    scenario = Scenario(
        cluster=cluster,
        mix=STANDARD_MIXES[applied_mix],
        population=cfg.population,
    )
    stats = remeasure(
        backend,
        scenario,
        best_config,
        seed=derive_seed(cfg.seed, "fig4-cross", config_mix, applied_mix),
        iterations=cfg.baseline_iterations,
    )
    return {"wips": stats.mean}


def run(
    config: ExperimentConfig | None = None,
    backend: PerformanceBackend | None = None,
) -> Fig4Result:
    """Run the §III.A / Figure 4 experiment.

    The three per-mix tuning runs are independent, as are the nine cross
    cells once the best configurations exist; they form two stages of a
    run plan fanned over ``cfg.jobs`` workers.  Per-run seeds are derived
    from the root seed exactly as the serial loop derived them, so the
    result is bit-identical at every jobs setting.
    """
    cfg = config or ExperimentConfig()
    executor = make_executor(cfg, "fig4")
    # A backend instance is shared across runs only in-process: workers in
    # a pool each build their own — or, under the shared engine, adopt the
    # fleet's persistent one.  Tracked so the executor's per-spec cache
    # accounting observes it wherever the specs execute.
    shared = track_backend(backend) if backend is not None else (
        make_backend(cfg) if executor.jobs == 1 or executor.engine == "inline"
        else None
    )

    tuned = executor.run(
        [
            RunSpec(
                key=mix_name,
                fn=_tune_mix,
                kwargs={"mix_name": mix_name, "cfg": cfg, "backend": shared},
            )
            for mix_name in MIX_ORDER
        ]
    )
    stage_stats = [executor.cache_stats]
    baselines = {m: tuned[m]["baseline"] for m in MIX_ORDER}
    best_configs = {m: tuned[m]["best_config"] for m in MIX_ORDER}
    histories = {m: tuned[m]["history"] for m in MIX_ORDER}
    fraction_above = {m: tuned[m]["fraction_above"] for m in MIX_ORDER}
    window_improvement = {m: tuned[m]["window_improvement"] for m in MIX_ORDER}

    cells = executor.run(
        [
            RunSpec(
                key=(config_mix, applied_mix),
                fn=_cross_cell,
                kwargs={
                    "config_mix": config_mix,
                    "applied_mix": applied_mix,
                    "best_config": best_configs[config_mix],
                    "cfg": cfg,
                    "backend": shared,
                },
            )
            for config_mix in MIX_ORDER
            for applied_mix in MIX_ORDER
        ]
    )
    cross = {key: cell["wips"] for key, cell in cells.items()}
    stage_stats.append(executor.cache_stats)

    # Counter deltas are captured per spec where it executed (worker or
    # parent) and merged by the executor — the same numbers whether the
    # caches lived in one shared backend or in per-worker copies.
    cache_stats = merge_cache_stats(stage_stats)
    executor.close()

    return Fig4Result(
        baselines=baselines,
        best_configs=best_configs,
        cross=cross,
        histories=histories,
        fraction_above=fraction_above,
        window_improvement=window_improvement,
        cache_stats=cache_stats,
    )
