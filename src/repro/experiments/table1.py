"""Table 1: the TPC-W workload mixes.

The paper's Table 1 is the TPC-W specification's interaction weights; this
driver regenerates it from :mod:`repro.tpcw.interactions` and verifies the
Browse/Order split (95/5, 80/20, 50/50) as a sanity check that the encoded
mixes are exactly the specification's.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.tpcw.interactions import (
    BROWSING_MIX,
    Interaction,
    InteractionCategory,
    ORDERING_MIX,
    SHOPPING_MIX,
)
from repro.util.tables import Table

__all__ = ["Table1Result", "run"]


@dataclass(frozen=True)
class Table1Result:
    """The regenerated mix table plus the category split per mix."""

    browse_split: dict[str, float]
    order_split: dict[str, float]

    def to_table(self) -> Table:
        """Render the paper's Table 1."""
        table = Table(
            "TABLE 1: TPC-W benchmark workloads",
            ["Web Interaction", "Browsing (WIPSb)", "Shopping (WIPS)", "Ordering (WIPSo)"],
        )
        mixes = (BROWSING_MIX, SHOPPING_MIX, ORDERING_MIX)
        table.add_row(
            "Browse",
            *(f"{m.category_fraction(InteractionCategory.BROWSE) * 100:.0f} %" for m in mixes),
        )
        for interaction in Interaction:
            if interaction.category is not InteractionCategory.BROWSE:
                continue
            table.add_row(
                interaction.value,
                *(f"{m.weight(interaction) * 100:.2f} %" for m in mixes),
            )
        table.add_row(
            "Order",
            *(f"{m.category_fraction(InteractionCategory.ORDER) * 100:.0f} %" for m in mixes),
        )
        for interaction in Interaction:
            if interaction.category is not InteractionCategory.ORDER:
                continue
            table.add_row(
                interaction.value,
                *(f"{m.weight(interaction) * 100:.2f} %" for m in mixes),
            )
        return table


def run() -> Table1Result:
    """Regenerate Table 1 and its Browse/Order splits."""
    return Table1Result(
        browse_split={
            m.name: m.category_fraction(InteractionCategory.BROWSE)
            for m in (BROWSING_MIX, SHOPPING_MIX, ORDERING_MIX)
        },
        order_split={
            m.name: m.category_fraction(InteractionCategory.ORDER)
            for m in (BROWSING_MIX, SHOPPING_MIX, ORDERING_MIX)
        },
    )
