"""Replication: are the conclusions stable across seeds?

Every driver in this package is deterministic per seed; a single run could
still be a lucky draw.  :func:`replicate` re-runs a scalar-producing
experiment under several seeds and summarizes the distribution, and
:func:`replicate_fig4_improvements` applies that to the headline numbers
(the per-workload improvements of Figure 4), so EXPERIMENTS.md's claims can
be quoted with spread rather than as point estimates.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Mapping, Sequence

from repro.experiments import fig4
from repro.experiments.runner import ExperimentConfig
from repro.parallel import ParallelExecutor, RunSpec
from repro.util.stats import RunningStats
from repro.util.tables import Table

__all__ = ["Replication", "replicate", "replicate_fig4_improvements"]


@dataclass(frozen=True)
class Replication:
    """Distribution of one scalar metric over replicated runs."""

    name: str
    values: tuple[float, ...]

    def __post_init__(self) -> None:
        if not self.values:
            raise ValueError("replication needs at least one run")

    @property
    def stats(self) -> RunningStats:
        """Mean / spread accumulator over the runs."""
        return RunningStats(self.values)

    @property
    def all_positive(self) -> bool:
        """True when every replication agreed on the sign."""
        return all(v > 0 for v in self.values)


def _call_metric(
    metric: Callable[[ExperimentConfig], float],
    config: ExperimentConfig,
) -> float:
    """Worker: evaluate one metric under one seeded config."""
    return metric(config)


def replicate(
    name: str,
    metric: Callable[[ExperimentConfig], float],
    config: ExperimentConfig,
    seeds: Sequence[int],
) -> Replication:
    """Run ``metric`` under each seed (config otherwise unchanged).

    Seeds are independent runs, so they fan over ``config.jobs`` workers;
    each inner run then executes serially (``jobs=1``) to keep the pool
    flat.  With ``config.jobs > 1`` the metric must be picklable (a
    module-level function, not a lambda).
    """
    if not seeds:
        raise ValueError("need at least one seed")
    executor = ParallelExecutor(config.jobs, engine=config.engine)
    inner_jobs = 1 if executor.jobs > 1 else config.jobs
    results = executor.run(
        [
            RunSpec(
                key=("seed", seed),
                fn=_call_metric,
                kwargs={
                    "metric": metric,
                    "config": replace(config, seed=seed, jobs=inner_jobs),
                },
            )
            for seed in seeds
        ]
    )
    return Replication(
        name=name, values=tuple(results[("seed", s)] for s in seeds)
    )


def _fig4_improvements(config: ExperimentConfig) -> dict[str, float]:
    """Worker: one seed's Figure 4 run, reduced to its improvements."""
    result = fig4.run(config)
    return {mix: result.improvement(mix) for mix in fig4.MIX_ORDER}


def replicate_fig4_improvements(
    config: ExperimentConfig,
    seeds: Sequence[int],
) -> Mapping[str, Replication]:
    """Per-workload Figure 4 improvements across seeds.

    Returns one :class:`Replication` per mix.  (Each seed re-runs the full
    three-mix tuning pipeline, so cost = ``len(seeds)`` × one Figure 4
    run; the seeds fan over ``config.jobs`` workers.)
    """
    executor = ParallelExecutor(config.jobs, engine=config.engine)
    inner_jobs = 1 if executor.jobs > 1 else config.jobs
    results = executor.run(
        [
            RunSpec(
                key=("seed", seed),
                fn=_fig4_improvements,
                kwargs={"config": replace(config, seed=seed, jobs=inner_jobs)},
            )
            for seed in seeds
        ]
    )
    return {
        mix: Replication(
            name=f"fig4-improvement-{mix}",
            values=tuple(results[("seed", s)][mix] for s in seeds),
        )
        for mix in fig4.MIX_ORDER
    }


def replication_table(replications: Mapping[str, Replication]) -> Table:
    """Render replications as mean ± sd (min..max, n)."""
    table = Table(
        "Replication: metric distribution across seeds",
        ["Metric", "Mean", "Std dev", "Min", "Max", "Runs", "Sign-stable"],
    )
    for name, rep in replications.items():
        s = rep.stats
        table.add_row(
            name,
            f"{s.mean * 100:+.1f}%",
            f"{s.stddev * 100:.1f}%",
            f"{s.minimum * 100:+.1f}%",
            f"{s.maximum * 100:+.1f}%",
            s.count,
            "yes" if rep.all_positive else "no",
        )
    return table
