"""Experiment drivers: one per table/figure of the paper's evaluation.

Each driver is a plain function taking an :class:`ExperimentConfig`
(iteration counts scale down for tests, up for the benchmark harness) and
returning a result dataclass that knows how to render the paper-style
table(s).  The benchmark files under ``benchmarks/`` are thin wrappers that
run these drivers and print the renderings.

| paper item        | driver                                      |
|-------------------|---------------------------------------------|
| Table 1           | :func:`repro.experiments.table1.run`        |
| §III.A text       | part of :func:`repro.experiments.fig4.run`  |
| Figure 4          | :func:`repro.experiments.fig4.run`          |
| Table 3           | :func:`repro.experiments.table3.render`     |
| Figure 5          | :func:`repro.experiments.fig5.run`          |
| Table 4           | :func:`repro.experiments.table4.run`        |
| Figure 7          | :func:`repro.experiments.fig7.run`          |
| §III.A diagnostics| :func:`repro.experiments.sensitivity.run`   |
| ablations         | :mod:`repro.experiments.ablations`          |
| drift (extension) | :func:`repro.experiments.drift.run`         |
| scale (extension) | :func:`repro.experiments.scale.run`         |
| $/WIPS (extension)| :func:`repro.experiments.price_performance.run` |
| robustness        | :mod:`repro.experiments.robustness`         |
| replication       | :mod:`repro.experiments.replication`        |
"""

from repro.experiments.runner import ExperimentConfig, remeasure

__all__ = ["ExperimentConfig", "remeasure"]
