"""Figure 5: tuning responsiveness to changing workloads.

The system starts from the default configuration; the workload changes
every ``segment`` iterations (browsing → ordering → browsing → …, the
paper's protocol).  The driver records the WIPS series and, per segment,
how many iterations the tuner needed to recover to near the segment's
settled performance level — the paper's observation is that "only a few
iterations are needed to adapt to the new workload".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.cluster.topology import ClusterSpec
from repro.experiments.runner import ExperimentConfig, make_backend
from repro.model.base import PerformanceBackend, Scenario
from repro.tpcw.interactions import STANDARD_MIXES
from repro.tuning.adaptive import AdaptiveTuningSession
from repro.tuning.session import ClusterTuningSession, make_scheme
from repro.util.plot import line_chart
from repro.util.rng import derive_seed
from repro.util.tables import Table

__all__ = ["Fig5Result", "run"]


@dataclass(frozen=True)
class Fig5Result:
    """The WIPS time series and per-segment adaptation statistics."""

    #: Workload name per iteration.
    workloads: tuple[str, ...]
    #: Measured WIPS per iteration.
    wips: tuple[float, ...]
    #: Iterations at which the adaptive session restarted its search.
    restarts: tuple[int, ...]
    #: Per segment: (start iteration, mix, iterations to recover).
    segments: tuple[tuple[int, str, int], ...]

    def to_table(self) -> Table:
        """Per-segment adaptation summary (the Figure 5 narrative)."""
        table = Table(
            "Figure 5: responsiveness to changing workloads",
            ["Segment start", "Workload", "Iterations to adapt", "Settled WIPS"],
        )
        arr = np.asarray(self.wips)
        starts = [s for s, _, _ in self.segments] + [len(arr)]
        for (start, mix, adapt), end in zip(self.segments, starts[1:]):
            settled = float(np.mean(arr[max(start, end - 20) : end]))
            table.add_row(start, mix, adapt, f"{settled:.1f}")
        return table

    def chart(self, width: int = 80, height: int = 12) -> str:
        """ASCII rendering of the Figure 5 series (switches marked)."""
        switches = [s for s, _, _ in self.segments[1:]]
        return line_chart(
            list(self.wips), width=width, height=height,
            title="Figure 5: WIPS under changing workloads (| = switch)",
            markers=switches,
        )

    def series_table(self, stride: int = 10) -> Table:
        """The WIPS series (down-sampled) — the figure's data."""
        table = Table(
            "Figure 5 series: WIPS per iteration (down-sampled)",
            ["Iteration", "Workload", "WIPS"],
        )
        for i in range(0, len(self.wips), stride):
            table.add_row(i, self.workloads[i], f"{self.wips[i]:.1f}")
        return table


def _recovery_iterations(
    wips: Sequence[float], start: int, end: int, tolerance: float = 0.07
) -> int:
    """Iterations from segment start until WIPS first reaches within
    ``tolerance`` of the segment's settled level (mean of its last 20)."""
    window = np.asarray(wips[start:end])
    if len(window) == 0:
        return 0
    settled = float(np.mean(window[-min(20, len(window)) :]))
    floor = settled * (1.0 - tolerance)
    for i, value in enumerate(window):
        if value >= floor:
            return i
    return len(window)


def run(
    config: ExperimentConfig | None = None,
    backend: PerformanceBackend | None = None,
    segment: int | None = None,
    schedule: Sequence[str] = ("browsing", "ordering", "browsing"),
) -> Fig5Result:
    """Run the workload-switching experiment.

    ``segment`` defaults to half the configured iteration budget per
    switch, mirroring the paper's 100-iteration segments at the default
    200-iteration budget... with three segments the default run is 300
    iterations total, like the paper's figure.
    """
    cfg = config or ExperimentConfig()
    backend = backend or make_backend()
    seg = segment if segment is not None else max(cfg.iterations // 2, 10)
    cluster = ClusterSpec.three_tier(1, 1, 1)
    scenario = Scenario(
        cluster=cluster,
        mix=STANDARD_MIXES[schedule[0]],
        population=cfg.population,
    )
    session = ClusterTuningSession(
        backend,
        scenario,
        scheme=make_scheme(scenario, "default"),
        seed=derive_seed(cfg.seed, "fig5"),
        speculate=cfg.speculate,
    )
    adaptive = AdaptiveTuningSession(session)

    workloads: list[str] = []
    wips: list[float] = []
    segments: list[tuple[int, str, int]] = []
    for seg_index, mix_name in enumerate(schedule):
        if seg_index > 0:
            adaptive.set_mix(STANDARD_MIXES[mix_name])
        start = len(wips)
        for _ in range(seg):
            m = adaptive.step()
            workloads.append(mix_name)
            wips.append(m.wips)
        segments.append((start, mix_name, 0))

    # Fill in recovery statistics now that the full series exists.
    finalized = []
    bounds = [s for s, _, _ in segments] + [len(wips)]
    for (start, mix_name, _), end in zip(segments, bounds[1:]):
        finalized.append((start, mix_name, _recovery_iterations(wips, start, end)))

    return Fig5Result(
        workloads=tuple(workloads),
        wips=tuple(wips),
        restarts=tuple(adaptive.restarts),
        segments=tuple(finalized),
    )
