"""Command-line interface: ``python -m repro <command>``.

Commands:

``baseline``
    Measure the default configuration of a cluster/workload.
``tune``
    Run an Active Harmony tuning session; optionally persist the best
    configuration (JSON) and the full history (JSON Lines).
``sensitivity``
    One-at-a-time parameter sweeps on a scenario.
``experiment``
    Run one of the paper's experiment drivers and print its table(s).
``validate``
    Cross-check the analytic backend against the discrete-event backend.
``lint``
    Static determinism/reproducibility analysis (see docs/static_analysis.md);
    exits nonzero when any rule fires.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.cluster.topology import ClusterSpec
from repro.durability.journal import JournalError
from repro.model.analytic import APPROXIMATIONS, AnalyticBackend
from repro.model.base import Scenario
from repro.tpcw.interactions import STANDARD_MIXES
from repro.util.units import parse_count

__all__ = ["main", "build_parser"]

EXPERIMENTS = (
    "table1", "fig4", "fig5", "table4", "fig7", "sensitivity",
    "drift", "price", "chaos", "scale",
)

#: Experiments whose run plans fan out over many independent runs; these
#: default to the persistent shared engine when ``--jobs`` exceeds one
#: (``--engine process`` stays available as the explicit opt-out).
FANOUT_EXPERIMENTS = frozenset({"fig4", "table4", "sensitivity", "scale"})


def _add_durability_arguments(parser: argparse.ArgumentParser) -> None:
    group = parser.add_mutually_exclusive_group()
    group.add_argument(
        "--journal", metavar="FILE",
        help=(
            "write-ahead journal: every committed measurement/run is "
            "appended (fsync'd, checksummed) so a killed run can be "
            "continued with --resume; refuses an existing journal"
        ),
    )
    group.add_argument(
        "--resume", metavar="FILE",
        help=(
            "resume a killed run from its journal: committed steps replay "
            "cache-hot (no re-measuring, no re-solving) and the run "
            "continues, bit-identical to an uninterrupted one"
        ),
    )
    parser.add_argument(
        "--store-path", metavar="DIR",
        help=(
            "durable shared-store directory (checksummed atomic segments): "
            "the --engine shared cache survives process death; corrupt "
            "entries are quarantined, never served"
        ),
    )
    parser.add_argument(
        "--engine-faults", metavar="PLAN.json",
        help=(
            "inject engine-layer faults from an EngineFaultPlan JSON file "
            "(worker kills, fleet build failures, slow workers, torn "
            "store writes; see docs/robustness.md)"
        ),
    )


def _apply_durability(args: argparse.Namespace) -> None:
    """Install the process-wide durability/fault options, if given."""
    if getattr(args, "store_path", None):
        from repro.parallel.engine import SharedEngine

        SharedEngine.configure(store_path=args.store_path)
    if getattr(args, "engine_faults", None):
        from repro.faults.engine import EngineFaultPlan, install_engine_faults

        install_engine_faults(EngineFaultPlan.load(args.engine_faults))


def _add_sanitize_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--sanitize", action="store_true",
        help=(
            "run with the concurrency sanitizer (equivalent to "
            "REPRO_SANITIZE=1): record lock orders, held-lock sets and "
            "cache coherence at runtime; findings are reported after the "
            "command and force a nonzero exit (see docs/static_analysis.md)"
        ),
    )


def _jobs_argument(value: str) -> int:
    jobs = int(value)
    if jobs < 0:
        raise argparse.ArgumentTypeError(
            f"must be >= 1 (or 0 for all cores), got {jobs}"
        )
    return jobs


def _population_argument(value: str) -> int:
    try:
        count = parse_count(value)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from None
    if count < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {count}")
    return count


def _add_scenario_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--mix", choices=sorted(STANDARD_MIXES), default="shopping",
        help="TPC-W workload mix (default: shopping)",
    )
    parser.add_argument("--proxies", type=int, default=1, help="proxy-tier nodes")
    parser.add_argument("--apps", type=int, default=1, help="app-tier nodes")
    parser.add_argument("--dbs", type=int, default=1, help="database-tier nodes")
    parser.add_argument(
        "--population", type=_population_argument, default=750,
        metavar="N",
        help="emulated browsers; accepts k/m/g suffixes (default: 750)",
    )
    parser.add_argument(
        "--approximation", choices=APPROXIMATIONS, default="auto",
        help=(
            "MVA approximation level: auto picks fluid and/or hierarchical "
            "aggregation from population and cluster width; exact forces "
            "the per-node Schweitzer solve and refuses huge populations "
            "(default: auto)"
        ),
    )
    parser.add_argument("--seed", type=int, default=0, help="root random seed")


def _scenario(args: argparse.Namespace) -> Scenario:
    cluster = ClusterSpec.three_tier(args.proxies, args.apps, args.dbs)
    return Scenario(
        cluster=cluster,
        mix=STANDARD_MIXES[args.mix],
        population=args.population,
    )


def _backend(args: argparse.Namespace, scenario: Scenario, **kwargs):
    """An :class:`AnalyticBackend` honouring ``--approximation``.

    Mode resolution runs eagerly so that ``--approximation exact`` with a
    huge ``--population`` dies with a parser error in milliseconds, not
    hours into an O(N) exact solve.
    """
    backend = AnalyticBackend(approximation=args.approximation, **kwargs)
    try:
        backend.resolve_modes(scenario.cluster, scenario.population)
    except ValueError as exc:
        raise SystemExit(f"repro: error: {exc}")
    return backend


def build_parser() -> argparse.ArgumentParser:
    """The argument parser for ``python -m repro`` (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Automated Cluster-Based Web Service "
            "Performance Tuning' (HPDC 2004)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("baseline", help="measure the default configuration")
    _add_scenario_arguments(p)
    p.add_argument("--repeats", type=int, default=10, help="noise repeats")

    p = sub.add_parser("tune", help="run a tuning session")
    _add_scenario_arguments(p)
    p.add_argument("--iterations", type=int, default=100)
    p.add_argument(
        "--method", choices=("default", "duplication", "partitioning"),
        default="default",
    )
    p.add_argument(
        "--strategy",
        choices=("simplex", "simplex-damped", "random", "coordinate"),
        default="simplex",
    )
    p.add_argument("--save-best", metavar="FILE", help="write best config JSON")
    p.add_argument(
        "--save-history", metavar="FILE", help="write history JSON Lines"
    )
    p.add_argument(
        "--speculate", action=argparse.BooleanOptionalAction, default=False,
        help=(
            "prefetch the strategy's lookahead frontier in batched solves "
            "(results are bit-identical; only wall-clock changes)"
        ),
    )
    p.add_argument(
        "--jobs", type=_jobs_argument, default=1, metavar="N",
        help=(
            "worker processes fanning out the speculative frontier "
            "(default 1; 0 = all cores; needs --speculate)"
        ),
    )
    p.add_argument(
        "--engine", choices=("inline", "process", "shared"), default="process",
        help=(
            "execution engine for speculative prefetch fan-out: inline "
            "(serial), process (per-run pool), or shared (persistent "
            "worker fleet + cross-run shared cache); results are "
            "bit-identical at every setting"
        ),
    )
    p.add_argument(
        "--faults", metavar="PLAN.json",
        help="inject failures from a fault-plan JSON file (see docs/robustness.md)",
    )
    p.add_argument(
        "--resilience", action="store_true",
        help=(
            "handle failed measurements with the resilience policy "
            "(retry + backoff + quarantine) instead of raising"
        ),
    )
    _add_durability_arguments(p)
    _add_sanitize_argument(p)

    p = sub.add_parser("sensitivity", help="one-at-a-time parameter sweeps")
    _add_scenario_arguments(p)
    p.add_argument(
        "--params", help="comma-separated full parameter names (default: all)"
    )
    p.add_argument("--points", type=int, default=4)
    p.add_argument("--repeats", type=int, default=2)
    p.add_argument("--top", type=int, default=None, help="show only top N")

    p = sub.add_parser("experiment", help="run a paper experiment driver")
    p.add_argument("name", choices=EXPERIMENTS)
    p.add_argument(
        "--iterations", type=int, default=200,
        help="tuning iterations (paper protocol: 200)",
    )
    p.add_argument("--seed", type=int, default=17)
    p.add_argument(
        "--jobs", type=_jobs_argument, default=None, metavar="N",
        help=(
            "worker processes for independent runs (default: all cores; "
            "1 = the serial path; results are identical either way)"
        ),
    )
    p.add_argument(
        "--no-cache", action="store_true",
        help="disable measurement memoization (results are identical)",
    )
    p.add_argument(
        "--engine", choices=("inline", "process", "shared"), default=None,
        help=(
            "execution engine for the run plan: inline (serial in-process), "
            "process (per-run worker pool), or shared (one persistent "
            "worker fleet reused across experiments over a cross-process "
            "shared cache; jobs=1 takes the vectorized mega-batch path). "
            "Default: shared for the fan-out drivers (fig4, table4, "
            "sensitivity, scale) when jobs > 1, process otherwise; "
            "results are bit-identical at every setting"
        ),
    )
    p.add_argument(
        "--speculate", action=argparse.BooleanOptionalAction, default=False,
        help=(
            "prefetch each tuning step's lookahead frontier in batched "
            "solves (results are bit-identical; only wall-clock changes)"
        ),
    )
    p.add_argument(
        "--profile", action="store_true",
        help=(
            "record simulator observability diagnostics (event counts, "
            "RNG draw accounting, per-phase wall-clock) in the DES arms; "
            "results are bit-identical either way"
        ),
    )
    p.add_argument(
        "--faults", metavar="PLAN.json",
        help=(
            "fault-plan JSON for the chaos experiment "
            "(default: crash one app node mid-run)"
        ),
    )
    p.add_argument(
        "--resilience", action=argparse.BooleanOptionalAction, default=True,
        help=(
            "retry/quarantine/rollback policy for the chaos experiment's "
            "resilient arm (--no-resilience degrades it to penalty-only)"
        ),
    )
    _add_durability_arguments(p)
    _add_sanitize_argument(p)

    p = sub.add_parser(
        "validate", help="cross-check the analytic and DES backends"
    )
    _add_scenario_arguments(p)
    p.add_argument(
        "--time-scale", type=float, default=0.06,
        help="DES iteration scale (1.0 = the paper's 1200 s cycle)",
    )
    p.add_argument(
        "--replications", type=int, default=1,
        help=(
            "independent seed-derived DES replications merged by batch "
            "means (R>1 adds a confidence interval; default 1)"
        ),
    )
    p.add_argument(
        "--profile", action="store_true",
        help=(
            "print simulator observability diagnostics (event counts, "
            "RNG draw accounting, per-phase wall-clock)"
        ),
    )

    p = sub.add_parser(
        "lint", help="static determinism/reproducibility analysis"
    )
    p.add_argument(
        "paths", nargs="*", metavar="PATH",
        help="files or directories to lint (default: <root>/src)",
    )
    p.add_argument(
        "--format", choices=("text", "json"), default="text",
        dest="fmt", help="report format (default: text)",
    )
    p.add_argument(
        "--rules", action="store_true",
        help="list every rule with its documentation and exit",
    )
    p.add_argument(
        "--select", metavar="IDS",
        help=(
            "comma-separated rule ids or family prefixes to run "
            "(e.g. RPL003 or RPL1 for the whole concurrency family; "
            "default: all enabled)"
        ),
    )
    p.add_argument(
        "--ignore", metavar="IDS",
        help=(
            "comma-separated rule ids or family prefixes to skip "
            "(adds to pyproject ignores)"
        ),
    )
    p.add_argument(
        "--root", metavar="DIR", default=None,
        help="project root holding pyproject.toml (default: auto-detect)",
    )

    return parser


# ----------------------------------------------------------------------
def _cmd_baseline(args: argparse.Namespace) -> int:
    from repro.tuning.session import ClusterTuningSession

    scenario = _scenario(args)
    session = ClusterTuningSession(
        _backend(args, scenario), scenario, seed=args.seed
    )
    stats = session.measure_baseline(iterations=args.repeats).window_stats(0)
    print(
        f"{args.mix} mix, {scenario.cluster!r}, N={args.population}: "
        f"{stats.mean:.1f} WIPS (sd {stats.stddev:.2f}, {args.repeats} repeats)"
    )
    return 0


def _cmd_tune(args: argparse.Namespace) -> int:
    from repro.parallel import resolve_jobs
    from repro.tuning.session import ClusterTuningSession, make_scheme
    from repro.util.serialization import save_configuration, save_history

    scenario = _scenario(args)
    _apply_durability(args)
    backend = _backend(args, scenario)
    resilience = None
    plan = None
    if args.faults:
        from repro.faults import FaultPlan, FaultyBackend

        plan = FaultPlan.load(args.faults)
        backend = FaultyBackend(backend, plan)
    if args.resilience:
        from repro.faults import ResiliencePolicy

        resilience = ResiliencePolicy()
    journal = None
    if args.journal or args.resume:
        from repro.durability.journal import SessionJournal

        # Everything that shapes the outcome stream goes in the header:
        # resuming under a different command line must fail loudly, not
        # silently diverge.
        header = {
            "kind": "tune",
            "mix": args.mix,
            "proxies": args.proxies,
            "apps": args.apps,
            "dbs": args.dbs,
            "population": args.population,
            "approximation": args.approximation,
            "seed": args.seed,
            "iterations": args.iterations,
            "method": args.method,
            "strategy": args.strategy,
            "faults": plan.fingerprint() if plan is not None else None,
            "resilience": bool(args.resilience),
        }
        journal = SessionJournal(
            args.resume or args.journal, header, resume=bool(args.resume)
        )
    session = ClusterTuningSession(
        backend,
        scenario,
        scheme=make_scheme(scenario, args.method),
        strategy=args.strategy,
        seed=args.seed,
        resilience=resilience,
        on_measure_error="penalize" if args.faults else "raise",
        speculate=args.speculate,
        speculate_jobs=resolve_jobs(args.jobs) if args.speculate else 1,
        speculate_engine=args.engine,
        journal=journal,
    )
    baseline = session.measure_baseline().window_stats(0)
    print(f"baseline: {baseline.mean:.1f} WIPS")
    session.run(args.iterations)
    if journal is not None and args.resume:
        # Bookkeeping goes to stderr: stdout must diff clean against an
        # uninterrupted run (the CI smoke job relies on that).
        print(
            f"resumed from {args.resume}: replayed {journal.replayed} "
            f"committed measurements, recorded {journal.recorded} new",
            file=sys.stderr,
        )
    if args.faults:
        fault_stats = backend.stats.as_dict()
        injected = ", ".join(f"{k}={v}" for k, v in fault_stats.items() if v)
        print(f"faults: {injected or 'none fired'}")
    if resilience is not None:
        rs = session.resilience_stats
        print(
            f"resilience: {rs.retries} retries, {rs.backoff_ticks} backoff "
            f"ticks, {rs.quarantined} quarantined, {rs.rollbacks} rollbacks"
        )
    best = session.history.best()
    print(
        f"best after {args.iterations} iterations: "
        f"{best.performance:.1f} WIPS at iteration {best.iteration} "
        f"({best.performance / baseline.mean - 1:+.1%})"
    )
    if args.save_best:
        save_configuration(session.best_configuration(), args.save_best)
        print(f"best configuration written to {args.save_best}")
    if args.save_history:
        save_history(session.history, args.save_history)
        print(f"history written to {args.save_history}")
    if journal is not None:
        journal.close()
    return 0


def _cmd_sensitivity(args: argparse.Namespace) -> int:
    from repro.analysis.sensitivity import sensitivity_report

    scenario = _scenario(args)
    names = args.params.split(",") if args.params else None
    report = sensitivity_report(
        _backend(args, scenario), scenario, names=names,
        points=args.points, repeats=args.repeats, seed=args.seed,
    )
    print(report.to_table(top=args.top))
    return 0


def _resolve_engine(name: str, engine: Optional[str], jobs: int) -> str:
    """Pick the experiment engine when ``--engine`` was not given.

    Fan-out drivers (many independent runs sharing a measurement space)
    default to the persistent shared engine whenever more than one worker
    is in play; everything else keeps the per-run process pool.  An
    explicit ``--engine`` always wins.
    """
    if engine is not None:
        return engine
    if name in FANOUT_EXPERIMENTS and jobs > 1:
        return "shared"
    return "process"


def _cmd_experiment(args: argparse.Namespace) -> int:
    from repro.experiments import ExperimentConfig
    from repro.parallel import resolve_jobs

    _apply_durability(args)
    if (args.journal or args.resume) and args.name not in FANOUT_EXPERIMENTS:
        print(
            f"repro: error: --journal/--resume support the fan-out "
            f"experiments ({', '.join(sorted(FANOUT_EXPERIMENTS))}), "
            f"not {args.name!r}",
            file=sys.stderr,
        )
        return 2
    jobs = resolve_jobs(args.jobs)
    cfg = ExperimentConfig(
        iterations=args.iterations,
        seed=args.seed,
        jobs=jobs,
        memoize=not args.no_cache,
        speculate=args.speculate,
        profile=getattr(args, "profile", False),
        engine=_resolve_engine(args.name, args.engine, jobs),
        journal=args.resume or args.journal,
        resume=bool(args.resume),
    )
    if args.resume:
        print(f"resuming {args.name} from {args.resume}", file=sys.stderr)
    if args.name == "table1":
        from repro.experiments import table1

        print(table1.run().to_table())
    elif args.name == "fig4":
        from repro.experiments import fig4, table3

        result = fig4.run(cfg)
        print(result.to_matrix_table())
        print()
        print(result.to_improvement_table())
        print()
        print(table3.render(result))
    elif args.name == "fig5":
        from repro.experiments import fig5

        result = fig5.run(cfg)
        print(result.to_table())
    elif args.name == "table4":
        from repro.experiments import table4

        print(table4.run(cfg).to_table())
    elif args.name == "fig7":
        from repro.experiments import fig7

        a, b = fig7.run(cfg)
        print(a.to_table())
        print()
        print(b.to_table())
    elif args.name == "sensitivity":
        from repro.experiments import sensitivity

        result = sensitivity.run(cfg)
        print(result.to_table())
        print(result.cache_summary())
    elif args.name == "drift":
        from repro.experiments import drift

        result = drift.run(cfg)
        print(result.to_table())
        print()
        print(result.chart())
    elif args.name == "price":
        from repro.experiments import price_performance

        for mix in ("browsing", "ordering"):
            print(price_performance.run(cfg, mix_name=mix).to_table())
            print()
    elif args.name == "scale":
        from repro.experiments import scale

        result = scale.run(cfg)
        print(result.to_table())
        print()
        print(result.agreement_table())
        if result.des_profile:
            print()
            print("DES validation arm profile:")
            for key, value in result.des_profile.items():
                print(f"  {key[len('profile.'):]:<24} {value:,.6g}")
    elif args.name == "chaos":
        from repro.experiments import chaos
        from repro.faults import FaultPlan, ResiliencePolicy

        plan = FaultPlan.load(args.faults) if args.faults else None
        policy = None
        if not args.resilience:
            # Ablation: keep the reconfiguration loop but strip the
            # retry/quarantine/rollback machinery down to penalty-only.
            policy = ResiliencePolicy(
                max_retries=0, quarantine_after=0, rollback_after=0
            )
        result = chaos.run(cfg, plan=plan, resilience=policy)
        print(result.to_table())
        print()
        print(result.chart())
    else:  # pragma: no cover - argparse restricts choices
        raise AssertionError(args.name)
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    from repro.des.backend import SimulationBackend
    from repro.model.noise import NoiseModel

    scenario = _scenario(args)
    cfg = scenario.cluster.default_configuration()
    analytic = _backend(args, scenario, noise=NoiseModel(0.0, 0.0, 0.0))
    des = SimulationBackend(
        time_scale=args.time_scale,
        replications=args.replications,
        profile=args.profile,
    )
    m_ana = analytic.measure(scenario, cfg, seed=args.seed)
    m_des = des.measure(scenario, cfg, seed=args.seed)
    ratio = m_des.wips / m_ana.wips
    print(
        f"{args.mix} mix, N={args.population}: "
        f"DES {m_des.wips:.1f} WIPS vs analytic {m_ana.wips:.1f} WIPS "
        f"(ratio {ratio:.3f})"
    )
    ci = m_des.diagnostics.get("replication.wips_ci95")
    if ci is not None:
        count = int(m_des.diagnostics.get("replication.count", 0))
        print(
            f"{count} replications: "
            f"DES {m_des.wips:.1f} +/- {ci:.1f} WIPS (95% CI)"
        )
    if args.profile:
        print("profile:")
        for key in sorted(m_des.diagnostics):
            if key.startswith("profile."):
                value = m_des.diagnostics[key]
                print(f"  {key[len('profile.'):]:<24} {value:,.6g}")
    ok = 0.85 <= ratio <= 1.15
    print("backends agree within 15%" if ok else "DISAGREEMENT beyond 15%")
    return 0 if ok else 1


def _cmd_lint(args: argparse.Namespace) -> int:
    import pathlib

    from repro.lint import (
        ALL_RULES,
        Analyzer,
        find_root,
        format_json,
        format_rules,
        format_text,
        load_config,
        rules_by_id,
    )

    if args.rules:
        print(format_rules(ALL_RULES))
        return 0

    root = (
        pathlib.Path(args.root).resolve() if args.root else find_root()
    )
    config = load_config(root)
    known = set(rules_by_id())

    def parse_ids(raw: Optional[str]) -> Optional[frozenset[str]]:
        """Validate ``--select``/``--ignore`` tokens (ids or prefixes).

        A token is valid when it is a known rule id or a proper prefix
        of at least one (``RPL1`` selects the whole RPL1xx family).
        Unknown tokens are a usage error: exit code 2, message on
        stderr — distinct from exit 1 (findings), see docs.
        """
        if not raw:
            return None
        ids = frozenset(
            part.strip().upper() for part in raw.split(",") if part.strip()
        )
        unknown = {
            token
            for token in ids
            if not any(rule_id.startswith(token) for rule_id in known)
        }
        if unknown:
            print(
                f"repro lint: unknown rule ids or prefixes: "
                f"{', '.join(sorted(unknown))}",
                file=sys.stderr,
            )
            raise SystemExit(2)
        return ids

    config = config.merged(
        select=parse_ids(args.select), ignore=parse_ids(args.ignore)
    )
    if args.paths:
        paths = [pathlib.Path(p) for p in args.paths]
    else:
        src = root / "src"
        paths = [src if src.is_dir() else root]
    result = Analyzer(ALL_RULES, config).lint_paths(paths, root)
    print(format_json(result) if args.fmt == "json" else format_text(result))
    return 0 if result.ok else 1


_COMMANDS = {
    "baseline": _cmd_baseline,
    "tune": _cmd_tune,
    "sensitivity": _cmd_sensitivity,
    "experiment": _cmd_experiment,
    "validate": _cmd_validate,
    "lint": _cmd_lint,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code.

    ``--sanitize`` (on the commands that execute measurements) turns on
    the runtime concurrency sanitizer for the whole command — same as
    running under ``REPRO_SANITIZE=1`` — then prints any runtime
    findings through the lint text reporter and forces exit code 1.
    """
    import os

    args = build_parser().parse_args(argv)
    sanitize = getattr(args, "sanitize", False)
    if sanitize:
        os.environ["REPRO_SANITIZE"] = "1"
    try:
        code = _COMMANDS[args.command](args)
    except JournalError as exc:
        # Journal misuse (fresh run over an existing file, resume without
        # one, header mismatch) is an operator error, not a crash.
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if sanitize:
        from repro.lint import format_text, sanitizer
        from repro.lint.core import LintResult

        runtime = sanitizer.findings()
        print("sanitizer: " + ("FAIL" if runtime else "ok"), file=sys.stderr)
        if runtime:
            print(format_text(LintResult(runtime, files_checked=0)))
            code = code or 1
    return code


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
