"""Crash-safe durability: write-ahead journals and a persistent store.

The engine-level robustness layer (docs/robustness.md, "Layer 2"):

* :mod:`repro.durability.framing` — the length+CRC framed append format
  every durable file shares, with torn-tail detection.
* :mod:`repro.durability.journal` — :class:`SessionJournal` /
  :class:`JournaledRunner` (per-measurement write-ahead logging for
  tuning sessions) and :class:`ExperimentJournal` (per-spec logging for
  fan-out experiments), powering ``repro tune --resume`` and
  ``repro experiment … --resume`` with bit-identical continuation.
* :mod:`repro.durability.diskstore` — :class:`StorePersistence`,
  checksummed atomic segments behind ``--store-path`` that let the
  shared store survive process death, with corruption quarantine.
"""

from repro.durability.framing import (
    FrameError,
    FrameScan,
    append_frame,
    frame,
    scan_file,
    scan_frames,
)
from repro.durability.journal import (
    ExperimentJournal,
    JournalError,
    JournaledRunner,
    ReplayedMeasurementError,
    SessionJournal,
    measurement_from_dict,
    measurement_to_dict,
)
from repro.durability.diskstore import SEGMENT_SCHEMA, StorePersistence

__all__ = [
    "ExperimentJournal",
    "FrameError",
    "FrameScan",
    "JournalError",
    "JournaledRunner",
    "ReplayedMeasurementError",
    "SEGMENT_SCHEMA",
    "SessionJournal",
    "StorePersistence",
    "append_frame",
    "frame",
    "measurement_from_dict",
    "measurement_to_dict",
    "scan_file",
    "scan_frames",
]
