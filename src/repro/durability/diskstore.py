"""Disk persistence for the shared measurement/solution store.

A store directory holds numbered segment files (``segment-000001.seg``…),
each a framed sequence (:mod:`repro.durability.framing`) of pickled
``(key, value)`` entries behind a JSON header frame.  Segments are
immutable once written and published atomically (temp file +
``os.replace``), so a crash mid-flush leaves either the previous segment
set or the new one — never a half-segment.

Loading is paranoid by design: every entry re-validates its CRC, and a
bad entry (flipped byte, truncated tail, unpicklable payload) is
*quarantined* — dropped, counted in :attr:`StorePersistence.quarantined`,
and never served to a cache consumer.  The store is a cache of
deterministic computations, so dropping an entry only costs a re-solve;
serving a corrupt one would poison bit-identical results.
"""

from __future__ import annotations

import json
import pathlib
import pickle
from typing import Any, Optional, Union

from repro.durability.framing import frame, scan_file
from repro.util.serialization import atomic_write_bytes

__all__ = ["SEGMENT_SCHEMA", "StorePersistence"]

PathLike = Union[str, pathlib.Path]

SEGMENT_SCHEMA = "repro-store-segment/v1"
_SEGMENT_GLOB = "segment-*.seg"


class StorePersistence:
    """Segmented, checksummed, atomically-published store snapshots.

    ``injector`` (an :class:`~repro.faults.engine.EngineFaultInjector`)
    lets chaos runs tear scheduled segment writes exactly the way a
    crash mid-``write`` would, before the atomic rename publishes them.
    """

    def __init__(self, root: PathLike, injector: Optional[Any] = None) -> None:
        self.root = pathlib.Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.injector = injector
        #: Corrupt entries dropped across every load so far.
        self.quarantined = 0
        #: Entries loaded successfully across every load so far.
        self.loaded = 0
        #: Segments written by this instance.
        self.segments_written = 0
        #: Keys already on disk (loaded or flushed) — flush() skips them.
        self._persisted: set[Any] = set()

    # ------------------------------------------------------------------
    def _segments(self) -> list[pathlib.Path]:
        return sorted(self.root.glob(_SEGMENT_GLOB))

    def _next_segment_path(self) -> pathlib.Path:
        segments = self._segments()
        if not segments:
            ordinal = 1
        else:
            ordinal = int(segments[-1].stem.split("-")[1]) + 1
        return self.root / f"segment-{ordinal:06d}.seg"

    def load(self) -> dict[Any, Any]:
        """Read every segment, quarantining damaged entries.

        Later segments win on duplicate keys (they were written later).
        Returns the surviving entries; corruption never raises — a cache
        that cannot load is an empty cache, not a failed run.
        """
        entries: dict[Any, Any] = {}
        for segment in self._segments():
            scan = scan_file(segment, stop_on_error=False)
            self.quarantined += scan.corrupt_frames + scan.torn_tail
            payloads = scan.payloads
            if not payloads:
                continue
            try:
                header = json.loads(payloads[0].decode("utf-8"))
                ok_header = header.get("schema") == SEGMENT_SCHEMA
            except (ValueError, UnicodeDecodeError):
                ok_header = False
            if not ok_header:
                # Unrecognizable segment: quarantine it wholesale.
                self.quarantined += len(payloads)
                continue
            for payload in payloads[1:]:
                try:
                    key, value = pickle.loads(payload)
                except Exception:
                    self.quarantined += 1
                    continue
                entries[key] = value
                self.loaded += 1
        self._persisted.update(entries)
        return entries

    def flush(self, mapping: dict[Any, Any]) -> int:
        """Write every not-yet-persisted entry of ``mapping`` as a segment.

        Returns the number of entries written (0 writes no segment).
        Keys are sorted by repr so the same store contents produce the
        same segment bytes regardless of dict insertion order.
        """
        fresh = {
            key: value
            for key, value in mapping.items()
            if key not in self._persisted
        }
        if not fresh:
            return 0
        frames = [
            frame(
                json.dumps(
                    {"schema": SEGMENT_SCHEMA, "entries": len(fresh)},
                    sort_keys=True,
                ).encode("utf-8")
            )
        ]
        for key in sorted(fresh, key=repr):
            frames.append(frame(pickle.dumps((key, fresh[key]))))
        blob = b"".join(frames)
        if self.injector is not None and self.injector.on_segment_write():
            # Injected crash mid-write: the segment publishes torn, its
            # tail frame incomplete.  The *entries* are deliberately not
            # marked persisted — a later flush rewrites them, exactly as
            # a restarted run would.
            blob = blob[: max(len(frames[0]) + 7, len(blob) // 2)]
            atomic_write_bytes(self._next_segment_path(), blob)
            self.segments_written += 1
            return 0
        atomic_write_bytes(self._next_segment_path(), blob)
        self.segments_written += 1
        self._persisted.update(fresh)
        return len(fresh)

    def stats(self) -> dict[str, int]:
        """Persistence counters (for engine stats and chaos reports)."""
        return {
            "segments": len(self._segments()),
            "segments_written": self.segments_written,
            "entries_loaded": self.loaded,
            "entries_persisted": len(self._persisted),
            "quarantined": self.quarantined,
        }
