"""Length+CRC framed append-only files — the journal/segment wire format.

Every durable artifact in :mod:`repro.durability` (session journals,
experiment journals, shared-store segments) is a sequence of frames::

    [u32 length][u32 crc32(payload)][payload bytes]

appended with flush+fsync per record, so a frame either made it to the
file completely or is a *torn tail*: a SIGKILL (or power cut) mid-append
leaves at most one incomplete frame at the end of the file.  Readers
detect torn tails (short header, short payload, or CRC mismatch on the
final frame) and report the byte offset of the last complete frame so a
resumed writer can truncate and continue — the committed prefix is the
only state that ever matters.

Corruption *inside* the prefix (a flipped byte in an already-fsync'd
frame) is distinguished from a torn tail by position: the strict reader
(`stop_on_error=True`, journals) refuses to replay past it, while the
resyncing reader (`stop_on_error=False`, store segments) skips the bad
frame, counts it, and keeps going — a bad cache entry is droppable, a
bad journal entry is not.
"""

from __future__ import annotations

import os
import pathlib
import struct
import zlib
from dataclasses import dataclass
from typing import BinaryIO, Iterable, Union

__all__ = ["FrameError", "FrameScan", "append_frame", "frame", "scan_frames"]

PathLike = Union[str, pathlib.Path]

_HEADER = struct.Struct(">II")  # (payload length, crc32)
#: Upper bound on a single frame payload; anything larger in a header is
#: treated as corruption, not an allocation request.
MAX_FRAME = 1 << 28


class FrameError(ValueError):
    """A frame file is corrupt beyond what the caller tolerates."""


@dataclass(frozen=True)
class FrameScan:
    """Result of scanning a framed file."""

    #: Payloads of every complete, checksum-valid frame, in file order.
    payloads: tuple[bytes, ...]
    #: Byte offset just past the last *good* frame — where a resumed
    #: writer should truncate-and-append.
    valid_bytes: int
    #: 1 when the file ends in an incomplete frame (killed mid-append).
    torn_tail: int
    #: Complete-but-checksum-invalid frames skipped (resync mode only).
    corrupt_frames: int


def frame(payload: bytes) -> bytes:
    """Encode one payload as a framed record."""
    if len(payload) > MAX_FRAME:
        raise FrameError(f"payload of {len(payload)} bytes exceeds frame limit")
    return _HEADER.pack(len(payload), zlib.crc32(payload)) + payload


def append_frame(fh: BinaryIO, payload: bytes, *, fsync: bool = True) -> None:
    """Append one framed record and force it to the file.

    ``flush`` makes the record survive a SIGKILL of this process (the
    page cache outlives us); ``fsync`` additionally survives a host
    power cut, at the cost of a disk round-trip per record.
    """
    fh.write(frame(payload))
    fh.flush()
    if fsync:
        os.fsync(fh.fileno())


def scan_frames(data: bytes, *, stop_on_error: bool = True) -> FrameScan:
    """Decode a framed byte string.

    With ``stop_on_error`` (journal semantics) scanning stops at the
    first problem: a trailing incomplete frame is a tolerated torn tail,
    but a checksum failure with more data behind it — mid-file
    corruption — raises :class:`FrameError`, because replaying a journal
    with a hole would silently diverge.

    Without it (store-segment semantics) a bad frame is counted, skipped
    using its claimed length, and scanning continues; if the length
    field itself is implausible the remainder of the file is abandoned
    (counted as one more corrupt frame).
    """
    payloads: list[bytes] = []
    offset = 0
    valid = 0
    corrupt = 0
    torn = 0
    size = len(data)
    while offset < size:
        if offset + _HEADER.size > size:
            torn = 1  # header itself is incomplete
            break
        length, crc = _HEADER.unpack_from(data, offset)
        body_start = offset + _HEADER.size
        body_end = body_start + length
        if length > MAX_FRAME or body_end > size:
            implausible = length > MAX_FRAME or length > size
            if body_end > size and not implausible:
                torn = 1  # payload tail missing: killed mid-append
                break
            if stop_on_error:
                raise FrameError(
                    f"implausible frame length {length} at offset {offset}"
                )
            corrupt += 1
            break
        payload = data[body_start:body_end]
        if zlib.crc32(payload) != crc:
            if body_end == size:
                # Bad final frame: indistinguishable from a torn append
                # that wrote garbage lengths; treat as torn tail.
                torn = 1
                break
            if stop_on_error:
                raise FrameError(f"checksum mismatch at offset {offset}")
            corrupt += 1
            offset = body_end
            continue
        payloads.append(payload)
        offset = body_end
        valid = offset
    return FrameScan(
        payloads=tuple(payloads),
        valid_bytes=valid,
        torn_tail=torn,
        corrupt_frames=corrupt,
    )


def scan_file(path: PathLike, *, stop_on_error: bool = True) -> FrameScan:
    """Scan a framed file (missing file reads as empty)."""
    p = pathlib.Path(path)
    if not p.exists():
        return FrameScan(payloads=(), valid_bytes=0, torn_tail=0, corrupt_frames=0)
    return scan_frames(p.read_bytes(), stop_on_error=stop_on_error)


def write_frames(path: PathLike, payloads: Iterable[bytes]) -> None:
    """Atomically write a whole framed file (segments, not journals).

    Uses the same temp-file + ``os.replace`` protocol as
    :func:`repro.util.serialization.atomic_write_bytes`: readers see the
    old segment or the new one, never a half-written hybrid.
    """
    from repro.util.serialization import atomic_write_bytes

    atomic_write_bytes(path, b"".join(frame(p) for p in payloads))
