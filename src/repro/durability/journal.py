"""Write-ahead journals: crash-safe checkpointing for tuning runs.

Two granularities, same framing (:mod:`repro.durability.framing`):

* :class:`SessionJournal` — one JSON record per *measurement outcome* of a
  :class:`~repro.tuning.session.ClusterTuningSession`.  The session's own
  logic (simplex moves, retries, quarantine, reconfiguration) is
  deterministic given the outcome stream, so resume does not checkpoint
  tuner state at all: it re-executes the session against the journaled
  outcomes — cache-hot, no re-solving, no re-measuring — and the
  reconstructed state is bit-identical to the uninterrupted run *by
  construction*.  :class:`JournaledRunner` is the wedge: it wraps
  :class:`~repro.tuning.iteration.IterationRunner` and either records the
  real outcome (append+flush+fsync *before* the session sees it) or
  replays the next committed one.

* :class:`ExperimentJournal` — one pickled record per completed
  :class:`~repro.parallel.plan.RunSpec` of a fan-out experiment
  (fig4/table4/sensitivity/scale).  Specs are pure functions of their
  kwargs, so a resumed run serves completed specs from the journal and
  executes only the remainder; per-spec cache-stat deltas ride along so
  resumed cache accounting matches the uninterrupted run.

Both journals open with a header frame carrying the run's fingerprint
(scenario, seed, iterations…).  ``--resume`` against a journal whose
header does not match the command line fails loudly — silently resuming
a *different* run is the one unrecoverable corruption.
"""

from __future__ import annotations

import json
import pathlib
import pickle
from collections import deque
from typing import Any, Mapping, Optional, Union

from repro.durability.framing import (
    FrameError,
    append_frame,
    scan_file,
)
from repro.model.base import Measurement, ResourceUtilization

__all__ = [
    "ExperimentJournal",
    "JournalError",
    "JournaledRunner",
    "ReplayedMeasurementError",
    "SessionJournal",
    "measurement_from_dict",
    "measurement_to_dict",
]

PathLike = Union[str, pathlib.Path]

SESSION_SCHEMA = "repro-session-journal/v1"
EXPERIMENT_SCHEMA = "repro-experiment-journal/v1"


class JournalError(RuntimeError):
    """A journal cannot be created, resumed, or replayed."""


class ReplayedMeasurementError(RuntimeError):
    """Replay of a journaled measurement failure.

    The original exception type lives in ``error``; the session's
    failure handling (retry/backoff/penalize) only needs *an* exception
    here, and its committed state evolves identically either way.
    """

    def __init__(self, error: str, message: str) -> None:
        super().__init__(f"replayed {error}: {message}")
        self.error = error


def measurement_to_dict(measurement: Measurement) -> dict[str, Any]:
    """JSON-safe dict that round-trips a :class:`Measurement` exactly.

    Floats survive ``json.dumps``/``loads`` bit-for-bit (repr round-trip),
    which is what makes journal replay *byte*-identical, not just close.
    """
    return {
        "wips": measurement.wips,
        "raw_wips": measurement.raw_wips,
        "error_rate": measurement.error_rate,
        "response_time": measurement.response_time,
        "utilization": {
            node: util.as_dict()
            for node, util in measurement.utilization.items()
        },
        "diagnostics": dict(measurement.diagnostics),
        "per_line_wips": dict(measurement.per_line_wips),
    }


def measurement_from_dict(data: Mapping[str, Any]) -> Measurement:
    """Inverse of :func:`measurement_to_dict`."""
    return Measurement(
        wips=data["wips"],
        raw_wips=data["raw_wips"],
        error_rate=data["error_rate"],
        response_time=data["response_time"],
        utilization={
            node: ResourceUtilization(**util)
            for node, util in data["utilization"].items()
        },
        diagnostics=dict(data["diagnostics"]),
        per_line_wips=dict(data["per_line_wips"]),
    )


def _check_header(
    stored: Mapping[str, Any], expected: Mapping[str, Any], path: str
) -> None:
    if dict(stored) != dict(expected):
        diffs = sorted(
            k
            for k in set(stored) | set(expected)
            if stored.get(k) != expected.get(k)
        )
        raise JournalError(
            f"journal {path} belongs to a different run "
            f"(header mismatch on: {', '.join(diffs)})"
        )


class SessionJournal:
    """Append-only outcome log for one tuning session.

    Fresh runs (``resume=False``) refuse to overwrite an existing
    non-empty journal; resumed runs require one and replay its committed
    outcomes before recording continues.  A torn tail frame (process
    killed mid-append) is truncated away on resume: that measurement was
    never seen by the session, and the resumed run simply re-measures it
    deterministically.
    """

    def __init__(
        self,
        path: PathLike,
        header: Mapping[str, Any],
        *,
        resume: bool = False,
        fsync: bool = True,
    ) -> None:
        self.path = pathlib.Path(path)
        self.header = dict(header)
        self.fsync = fsync
        self.replayed = 0
        self.recorded = 0
        self.truncated_tail = 0
        pending: list[dict[str, Any]] = []
        if resume:
            if not self.path.exists():
                raise JournalError(f"cannot resume: no journal at {self.path}")
            try:
                scan = scan_file(self.path, stop_on_error=True)
            except FrameError as exc:
                raise JournalError(f"journal {self.path} is corrupt: {exc}") from exc
            if not scan.payloads:
                raise JournalError(f"journal {self.path} has no header frame")
            stored_header = json.loads(scan.payloads[0].decode("utf-8"))
            full_header = {"schema": SESSION_SCHEMA, **self.header}
            _check_header(stored_header, full_header, str(self.path))
            pending = [
                json.loads(p.decode("utf-8")) for p in scan.payloads[1:]
            ]
            self.truncated_tail = scan.torn_tail
            if scan.torn_tail:
                # Drop the incomplete frame so appends extend the
                # committed prefix, not the garbage tail.
                with open(self.path, "r+b") as fh:
                    fh.truncate(scan.valid_bytes)
            self._fh = open(self.path, "ab")
        else:
            if self.path.exists() and self.path.stat().st_size:
                raise JournalError(
                    f"journal {self.path} already exists; pass --resume to "
                    "continue it or remove it to start over"
                )
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._fh = open(self.path, "wb")
            self._append({"schema": SESSION_SCHEMA, **self.header})
        self._pending = deque(pending)

    # ------------------------------------------------------------------
    @property
    def replaying(self) -> bool:
        """True while committed outcomes remain to be replayed."""
        return bool(self._pending)

    def _append(self, record: Mapping[str, Any]) -> None:
        payload = json.dumps(record, sort_keys=True).encode("utf-8")
        append_frame(self._fh, payload, fsync=self.fsync)

    def record_outcome(self, record: Mapping[str, Any]) -> None:
        """Commit one outcome (fsync'd before the caller proceeds)."""
        self._append(record)
        self.recorded += 1

    def next_outcome(self) -> dict[str, Any]:
        """Pop the next committed outcome during replay."""
        if not self._pending:
            raise JournalError("journal replay exhausted")
        self.replayed += 1
        return self._pending.popleft()

    def close(self) -> None:
        """Release the file handle (safe to call more than once)."""
        if not self._fh.closed:
            self._fh.close()

    def __enter__(self) -> "SessionJournal":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class JournaledRunner:
    """An :class:`IterationRunner` shim that records or replays outcomes.

    Transparent to the session: same ``run`` signature, same ``backend``/
    ``scenario``/``iterations_run`` surface.  Recording commits the
    outcome *before* returning it (write-ahead), so any outcome the
    session ever acted on is on disk.  Replaying reproduces the full side
    effect of the original call — the returned measurement or raised
    failure, one virtual backend tick, the backend's fault-stat deltas,
    and the runner's iteration count — without measuring anything.
    """

    def __init__(self, runner: Any, journal: SessionJournal) -> None:
        self.inner = runner
        self.journal = journal

    # -- IterationRunner surface --------------------------------------
    @property
    def backend(self) -> Any:
        return self.inner.backend

    @property
    def scenario(self) -> Any:
        return self.inner.scenario

    @scenario.setter
    def scenario(self, value: Any) -> None:
        self.inner.scenario = value

    @property
    def seed(self) -> int:
        return self.inner.seed

    @property
    def iterations_run(self) -> int:
        return self.inner.iterations_run

    # -- record / replay ----------------------------------------------
    def _stats_snapshot(self) -> Optional[dict[str, float]]:
        stats = getattr(self.inner.backend, "stats", None)
        as_dict = getattr(stats, "as_dict", None)
        if as_dict is None:
            return None
        return dict(as_dict())

    def _stats_delta(
        self, before: Optional[dict[str, float]]
    ) -> Optional[dict[str, float]]:
        if before is None:
            return None
        after = self._stats_snapshot() or {}
        delta = {k: after[k] - before.get(k, 0) for k in after}
        return {k: v for k, v in delta.items() if v} or None

    def _apply_stats_delta(self, delta: Optional[Mapping[str, float]]) -> None:
        if not delta:
            return
        stats = getattr(self.inner.backend, "stats", None)
        if stats is None:
            return
        for key, diff in delta.items():
            if hasattr(stats, key):
                setattr(stats, key, getattr(stats, key) + diff)

    @staticmethod
    def _config_digest(configuration: Mapping[str, int]) -> str:
        import hashlib

        blob = repr(sorted(configuration.items())).encode("utf-8")
        return hashlib.sha256(blob).hexdigest()[:16]

    def _replay(self, configuration: Any, index: Optional[int]) -> Measurement:
        record = self.journal.next_outcome()
        digest = self._config_digest(configuration)
        if record.get("config") != digest:
            raise JournalError(
                "journal replay diverged: the resumed run asked to measure "
                f"configuration {digest}, the journal committed "
                f"{record.get('config')} — the command line or code differs "
                "from the original run"
            )
        # Reproduce the original call's backend side effects: exactly one
        # virtual tick per measure() call (FaultyBackend ticks first,
        # success or failure), and the fault counters it accumulated.
        advance = getattr(self.inner.backend, "advance", None)
        if advance is not None:
            advance(1)
        self._apply_stats_delta(record.get("stats"))
        if record["ok"]:
            if index is None:
                # The real runner numbers implicit iterations itself — and
                # only a *successful* measure consumes an index (a raise
                # skips the increment).  Keep its counter marching exactly
                # so post-replay iterations seed identically.
                self.inner._count += 1
            return measurement_from_dict(record["m"])
        raise ReplayedMeasurementError(
            record.get("error", "Exception"), record.get("message", "")
        )

    def run(self, configuration: Any, index: Optional[int] = None) -> Measurement:
        if self.journal.replaying:
            return self._replay(configuration, index)
        before = self._stats_snapshot()
        digest = self._config_digest(configuration)
        try:
            measurement = self.inner.run(configuration, index=index)
        except Exception as exc:
            self.journal.record_outcome(
                {
                    "ok": False,
                    "config": digest,
                    "error": type(exc).__name__,
                    "message": str(exc),
                    "stats": self._stats_delta(before),
                }
            )
            raise
        self.journal.record_outcome(
            {
                "ok": True,
                "config": digest,
                "m": measurement_to_dict(measurement),
                "stats": self._stats_delta(before),
            }
        )
        return measurement


class ExperimentJournal:
    """Spec-granular write-ahead journal for fan-out experiments.

    Each committed record is ``pickle((key, value, cache_delta))``; the
    in-memory index maps spec keys to their results so a resumed
    :class:`~repro.parallel.executor.ParallelExecutor` serves completed
    specs instantly and runs only the remainder.  Records are committed
    per spec as results stream in, so a kill mid-plan loses only the
    in-flight specs.
    """

    def __init__(
        self,
        path: PathLike,
        header: Mapping[str, Any],
        *,
        resume: bool = False,
        fsync: bool = True,
    ) -> None:
        self.path = pathlib.Path(path)
        self.header = dict(header)
        self.fsync = fsync
        self.replayed = 0
        self.recorded = 0
        self.truncated_tail = 0
        entries: dict[Any, tuple[Any, Optional[dict]]] = {}
        if resume:
            if not self.path.exists():
                raise JournalError(f"cannot resume: no journal at {self.path}")
            try:
                scan = scan_file(self.path, stop_on_error=True)
            except FrameError as exc:
                raise JournalError(f"journal {self.path} is corrupt: {exc}") from exc
            if not scan.payloads:
                raise JournalError(f"journal {self.path} has no header frame")
            stored_header = pickle.loads(scan.payloads[0])
            full_header = {"schema": EXPERIMENT_SCHEMA, **self.header}
            _check_header(stored_header, full_header, str(self.path))
            for payload in scan.payloads[1:]:
                key, value, delta = pickle.loads(payload)
                entries[key] = (value, delta)
            self.truncated_tail = scan.torn_tail
            if scan.torn_tail:
                with open(self.path, "r+b") as fh:
                    fh.truncate(scan.valid_bytes)
            self._fh = open(self.path, "ab")
        else:
            if self.path.exists() and self.path.stat().st_size:
                raise JournalError(
                    f"journal {self.path} already exists; pass --resume to "
                    "continue it or remove it to start over"
                )
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._fh = open(self.path, "wb")
            append_frame(
                self._fh,
                pickle.dumps({"schema": EXPERIMENT_SCHEMA, **self.header}),
                fsync=self.fsync,
            )
        self._entries = entries

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: Any) -> Optional[tuple[Any, Optional[dict]]]:
        """The committed ``(value, cache_delta)`` for ``key``, if any."""
        hit = self._entries.get(key)
        if hit is not None:
            self.replayed += 1
        return hit

    def put(self, key: Any, value: Any, delta: Optional[dict]) -> None:
        """Commit one completed spec (idempotent per key)."""
        if key in self._entries:
            return
        append_frame(
            self._fh, pickle.dumps((key, value, delta)), fsync=self.fsync
        )
        self._entries[key] = (value, delta)
        self.recorded += 1

    def close(self) -> None:
        """Release the file handle (safe to call more than once)."""
        if not self._fh.closed:
            self._fh.close()

    def __enter__(self) -> "ExperimentJournal":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
