"""The item catalog and the static-object universe.

The paper runs TPC-W at scale factor 10,000 items (§II.D).  Static content —
item images, shared page furniture — forms the universe the proxy cache
works against.  Popularity is Zipf-distributed (the standard web-object
model, and what makes small memory caches effective).

The central service exported to the performance models is
:meth:`Catalog.hit_fraction`: the fraction of static-object *requests* that
a memory cache of a given size can serve, given Squid's admission bounds
(``minimum_object_size`` / ``maximum_object_size_in_memory``).  It assumes
the cache retains the most popular admissible objects (the steady state of
an LRU/LFU cache under Zipf traffic) and is fully vectorized.
"""

from __future__ import annotations

import hashlib
from bisect import bisect_right

import numpy as np

from repro.util.rng import spawn_rng
from repro.util.units import KB

__all__ = ["Catalog"]


class Catalog:
    """Static-object universe for a TPC-W store.

    Parameters
    ----------
    scale:
        Number of items the store sells (paper: 10,000).
    objects_per_item:
        Static objects per item (thumbnail + full image by default).
    zipf_exponent:
        Popularity skew; ~0.8 is typical for web objects.
    mean_object_kb / sigma:
        Lognormal object-size parameters (median web image a few KB).
    seed:
        Seed for the size draw (sizes are a fixed property of the store).
    """

    def __init__(
        self,
        scale: int = 10_000,
        objects_per_item: int = 2,
        zipf_exponent: float = 0.8,
        mean_object_kb: float = 5.0,
        sigma: float = 1.0,
        seed: int = 1234,
    ) -> None:
        if scale < 1:
            raise ValueError(f"scale must be >= 1, got {scale}")
        if objects_per_item < 1:
            raise ValueError("objects_per_item must be >= 1")
        if zipf_exponent < 0:
            raise ValueError("zipf_exponent must be non-negative")
        self.scale = scale
        self.zipf_exponent = zipf_exponent
        n = scale * objects_per_item
        rng = spawn_rng(seed, "catalog", scale, objects_per_item)
        mu = np.log(mean_object_kb * KB)
        self._sizes = np.exp(rng.normal(mu, sigma, size=n))
        self._sizes = np.maximum(self._sizes, 256.0)  # floor: headers alone
        ranks = np.arange(1, n + 1, dtype=float)
        weights = ranks ** (-zipf_exponent)
        self._popularity = weights / weights.sum()
        # Popularity rank is independent of size: shuffle sizes once.
        rng.shuffle(self._sizes)
        self._cdf = np.cumsum(self._popularity)
        self._cdf[-1] = 1.0
        # Python-list copy and a sizes list for the scalar DES path:
        # bisect_right + a list index beat scalar np.searchsorted +
        # ndarray item access by an order of magnitude, with the exact
        # same result (side="right" semantics, exact float comparisons).
        self._cdf_list = self._cdf.tolist()
        self._sizes_list = self._sizes.tolist()
        # hit_fraction is called with a handful of distinct (capacity,
        # bounds) triples thousands of times per tuning run; the catalog is
        # immutable, so memoising is free speed.
        self._hit_cache: dict[tuple[float, float, float], float] = {}

    # -- basic properties -------------------------------------------------
    @property
    def num_objects(self) -> int:
        """Number of distinct static objects."""
        return len(self._sizes)

    @property
    def sizes(self) -> np.ndarray:
        """Object sizes in bytes, indexed by popularity rank (read-only)."""
        view = self._sizes.view()
        view.flags.writeable = False
        return view

    @property
    def popularity(self) -> np.ndarray:
        """Request probability per object, by popularity rank (read-only)."""
        view = self._popularity.view()
        view.flags.writeable = False
        return view

    def universe_bytes(self) -> float:
        """Total bytes of all static objects."""
        return float(self._sizes.sum())

    def mean_object_bytes(self) -> float:
        """Request-weighted mean object size (what a served byte stream sees).

        Computed once — the universe is immutable and the server models ask
        for this on every demand derivation.
        """
        cached = getattr(self, "_mean_object_bytes", None)
        if cached is None:
            cached = float(np.dot(self._popularity, self._sizes))
            self._mean_object_bytes = cached
        return cached

    # -- cache modelling ---------------------------------------------------
    def admissible_mask(
        self, min_size_bytes: float, max_size_bytes: float
    ) -> np.ndarray:
        """Objects whose size passes the admission bounds."""
        return (self._sizes >= min_size_bytes) & (self._sizes <= max_size_bytes)

    def hit_fraction(
        self,
        cache_bytes: float,
        min_size_bytes: float = 0.0,
        max_size_bytes: float = float("inf"),
    ) -> float:
        """Fraction of static requests served by a cache of ``cache_bytes``.

        The cache is assumed to hold the most popular objects that (a) pass
        the size-admission bounds and (b) fit cumulatively in the capacity —
        the steady state of LRU under independent-reference Zipf traffic.
        """
        if cache_bytes <= 0:
            return 0.0
        key = (float(cache_bytes), float(min_size_bytes), float(max_size_bytes))
        hit = self._hit_cache.get(key)
        if hit is not None:
            return hit
        mask = self.admissible_mask(min_size_bytes, max_size_bytes)
        if not mask.any():
            hit = 0.0
        else:
            sizes = self._sizes[mask]
            pops = self._popularity[mask]
            cum = np.cumsum(sizes)
            cached = cum <= cache_bytes
            hit = float(min(1.0, pops[cached].sum()))
        if len(self._hit_cache) < 100_000:
            self._hit_cache[key] = hit
        return hit

    def fingerprint(self) -> str:
        """Content hash of the object universe (for measurement caching).

        Two catalogs with identical sizes/popularities fingerprint
        identically regardless of how they were constructed; the digest is
        computed once (the catalog is immutable) and cached.
        """
        cached = getattr(self, "_fingerprint", None)
        if cached is None:
            h = hashlib.sha256()
            h.update(f"{self.scale}|{self.zipf_exponent!r}|".encode())
            h.update(self._sizes.tobytes())
            h.update(self._popularity.tobytes())
            cached = h.hexdigest()
            self._fingerprint = cached
        return cached

    def sample_object(self, rng: np.random.Generator) -> int:
        """Draw one object index according to popularity (for the DES)."""
        idx = bisect_right(self._cdf_list, rng.random())
        last = len(self._cdf_list) - 1
        return idx if idx < last else last

    def sample_objects(self, rng: np.random.Generator, n: int) -> np.ndarray:
        """Draw ``n`` object indices according to popularity."""
        u = rng.random(n)
        idx = np.searchsorted(self._cdf, u, side="right")
        return np.minimum(idx, self.num_objects - 1)

    def object_size(self, index: int) -> float:
        """Size in bytes of object ``index``."""
        return self._sizes_list[index]
