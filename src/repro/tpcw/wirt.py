"""WIRT — TPC-W's Web Interaction Response Time constraints.

A compliant TPC-W run must keep the 90th-percentile response time of every
interaction type under a per-type limit (clause 5.2 of the specification);
WIPS without WIRT compliance is not a valid result.  The limits encoded
below follow the specification's structure: 3 seconds for ordinary pages,
5 seconds for the query-heavy pages (Best Sellers, New Products, Buy
Confirm) and 20 seconds for the offline-flavoured Admin Confirm.

:class:`WirtTracker` accumulates per-interaction latencies (the DES feeds
it) and reports percentile compliance.
"""

from __future__ import annotations

from typing import Mapping, Optional

from repro.tpcw.interactions import Interaction
from repro.util.stats import percentile
from repro.util.tables import Table

__all__ = ["WIRT_LIMITS", "WirtTracker"]

_I = Interaction

#: 90th-percentile response-time limits, seconds, per interaction type.
WIRT_LIMITS: dict[Interaction, float] = {
    _I.HOME: 3.0,
    _I.NEW_PRODUCTS: 5.0,
    _I.BEST_SELLERS: 5.0,
    _I.PRODUCT_DETAIL: 3.0,
    _I.SEARCH_REQUEST: 3.0,
    _I.SEARCH_RESULTS: 10.0,
    _I.SHOPPING_CART: 3.0,
    _I.CUSTOMER_REGISTRATION: 3.0,
    _I.BUY_REQUEST: 3.0,
    _I.BUY_CONFIRM: 5.0,
    _I.ORDER_INQUIRY: 3.0,
    _I.ORDER_DISPLAY: 3.0,
    _I.ADMIN_REQUEST: 3.0,
    _I.ADMIN_CONFIRM: 20.0,
}


class WirtTracker:
    """Per-interaction latency accumulation and 90th-percentile compliance."""

    def __init__(
        self,
        limits: Optional[Mapping[Interaction, float]] = None,
        quantile: float = 90.0,
    ) -> None:
        if not 0.0 < quantile < 100.0:
            raise ValueError("quantile must be in (0, 100)")
        self.limits = dict(limits) if limits is not None else dict(WIRT_LIMITS)
        missing = set(Interaction) - set(self.limits)
        if missing:
            raise ValueError(
                f"limits missing for {sorted(i.value for i in missing)}"
            )
        self.quantile = quantile
        self._samples: dict[Interaction, list[float]] = {
            i: [] for i in Interaction
        }

    def record(self, interaction: Interaction, latency: float) -> None:
        """Record one completed interaction's response time."""
        if latency < 0:
            raise ValueError("latency must be non-negative")
        self._samples[interaction].append(latency)

    def count(self, interaction: Interaction) -> int:
        """Samples recorded for one interaction type."""
        return len(self._samples[interaction])

    def percentile_of(self, interaction: Interaction) -> Optional[float]:
        """The tracked quantile for one type (None without samples)."""
        samples = self._samples[interaction]
        if not samples:
            return None
        return percentile(samples, self.quantile)

    def violations(self) -> dict[Interaction, float]:
        """Interaction types whose tracked percentile exceeds the limit."""
        out = {}
        for interaction, limit in self.limits.items():
            p = self.percentile_of(interaction)
            if p is not None and p > limit:
                out[interaction] = p
        return out

    def compliant(self) -> bool:
        """True when every measured interaction type is within its limit."""
        return not self.violations()

    def to_table(self) -> Table:
        """Per-type percentile vs limit, paper/spec style."""
        table = Table(
            f"WIRT compliance (p{self.quantile:.0f} response time vs limit)",
            ["Interaction", "Samples", f"p{self.quantile:.0f} (s)",
             "Limit (s)", "OK"],
        )
        for interaction in Interaction:
            p = self.percentile_of(interaction)
            table.add_row(
                interaction.value,
                self.count(interaction),
                "-" if p is None else f"{p:.3f}",
                f"{self.limits[interaction]:.0f}",
                "-" if p is None else ("yes" if p <= self.limits[interaction] else "NO"),
            )
        return table
