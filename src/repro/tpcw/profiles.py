"""Per-interaction resource profiles.

The paper's testbed executed real servlets and SQL; we replace them with a
resource profile per interaction describing *what work it generates where*:
embedded static objects served by the proxy tier, servlet CPU on the
application tier, and read/write work on the database tier.  The values are
calibrated so the three Table 1 mixes stress the system the way the paper
describes (§III.A):

* the **browsing** mix is dominated by static/cacheable content — most
  requests can be served by the proxy (or the application server) without
  touching the database;
* the **ordering** mix utilizes "all components in the system, including the
  database server", with update transactions whose "high latency operations"
  keep application threads occupied longer.

Quantities are per web interaction.  CPU times are seconds on one core of
the paper's reference machine (dual Athlon 1.67 GHz); sizes are bytes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.tpcw.interactions import Interaction
from repro.util.units import KB

__all__ = ["InteractionProfile", "PROFILES"]


@dataclass(frozen=True)
class InteractionProfile:
    """Resource demands one web interaction generates across the tiers."""

    #: Average number of embedded static objects (images, style sheets)
    #: fetched alongside the page; always served by the proxy tier.
    static_objects: float
    #: Probability the page itself is static/cacheable at the proxy, so a
    #: proxy hit avoids the application and database tiers entirely.
    page_cacheable: float
    #: Servlet CPU seconds on the application tier for a dynamic page.
    app_cpu: float
    #: Simple read queries issued to the database.
    db_queries: float
    #: Expensive read queries (joins/aggregations: Best Sellers, Search).
    db_heavy_queries: float
    #: Update transactions (cart updates, order placement).
    db_writes: float
    #: Rows inserted (order lines) — exercises the delayed-insert path.
    db_inserts: float
    #: Size of the generated page, bytes.
    response_bytes: float
    #: Bytes of query results shipped from the database to the servlet.
    db_result_bytes: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.page_cacheable <= 1.0:
            raise ValueError(
                f"page_cacheable must be in [0,1], got {self.page_cacheable}"
            )
        for field_name in (
            "static_objects",
            "app_cpu",
            "db_queries",
            "db_heavy_queries",
            "db_writes",
            "db_inserts",
            "response_bytes",
            "db_result_bytes",
        ):
            if getattr(self, field_name) < 0:
                raise ValueError(f"{field_name} must be non-negative")

    def scaled(self, factor: float) -> "InteractionProfile":
        """All demands multiplied by ``factor`` (workload-scaling helper)."""
        return InteractionProfile(
            static_objects=self.static_objects * factor,
            page_cacheable=self.page_cacheable,
            app_cpu=self.app_cpu * factor,
            db_queries=self.db_queries * factor,
            db_heavy_queries=self.db_heavy_queries * factor,
            db_writes=self.db_writes * factor,
            db_inserts=self.db_inserts * factor,
            response_bytes=self.response_bytes * factor,
            db_result_bytes=self.db_result_bytes * factor,
        )


_MS = 1e-3

#: Calibrated profiles for the 14 interactions.
PROFILES: dict[Interaction, InteractionProfile] = {
    Interaction.HOME: InteractionProfile(
        static_objects=9.0,
        page_cacheable=0.90,
        app_cpu=13.0 * _MS,
        db_queries=0.3,
        db_heavy_queries=0.0,
        db_writes=0.0,
        db_inserts=0.0,
        response_bytes=12 * KB,
        db_result_bytes=2 * KB,
    ),
    Interaction.NEW_PRODUCTS: InteractionProfile(
        static_objects=12.0,
        page_cacheable=0.85,
        app_cpu=26.0 * _MS,
        db_queries=0.5,
        db_heavy_queries=0.8,
        db_writes=0.0,
        db_inserts=0.0,
        response_bytes=20 * KB,
        db_result_bytes=12 * KB,
    ),
    Interaction.BEST_SELLERS: InteractionProfile(
        static_objects=12.0,
        page_cacheable=0.85,
        app_cpu=26.0 * _MS,
        db_queries=0.3,
        db_heavy_queries=1.0,
        db_writes=0.0,
        db_inserts=0.0,
        response_bytes=20 * KB,
        db_result_bytes=12 * KB,
    ),
    Interaction.PRODUCT_DETAIL: InteractionProfile(
        static_objects=7.0,
        page_cacheable=0.80,
        app_cpu=16.0 * _MS,
        db_queries=0.6,
        db_heavy_queries=0.0,
        db_writes=0.0,
        db_inserts=0.0,
        response_bytes=16 * KB,
        db_result_bytes=4 * KB,
    ),
    Interaction.SEARCH_REQUEST: InteractionProfile(
        static_objects=7.0,
        page_cacheable=0.95,
        app_cpu=8.0 * _MS,
        db_queries=0.0,
        db_heavy_queries=0.0,
        db_writes=0.0,
        db_inserts=0.0,
        response_bytes=8 * KB,
        db_result_bytes=0.0,
    ),
    Interaction.SEARCH_RESULTS: InteractionProfile(
        static_objects=11.0,
        page_cacheable=0.10,
        app_cpu=70.0 * _MS,
        db_queries=0.5,
        db_heavy_queries=1.2,
        db_writes=0.0,
        db_inserts=0.0,
        response_bytes=24 * KB,
        db_result_bytes=16 * KB,
    ),
    Interaction.SHOPPING_CART: InteractionProfile(
        static_objects=9.0,
        page_cacheable=0.0,
        app_cpu=28.0 * _MS,
        db_queries=1.2,
        db_heavy_queries=0.0,
        db_writes=0.6,
        db_inserts=0.4,
        response_bytes=14 * KB,
        db_result_bytes=4 * KB,
    ),
    Interaction.CUSTOMER_REGISTRATION: InteractionProfile(
        static_objects=3.0,
        page_cacheable=0.30,
        app_cpu=16.0 * _MS,
        db_queries=0.6,
        db_heavy_queries=0.0,
        db_writes=0.2,
        db_inserts=0.2,
        response_bytes=9 * KB,
        db_result_bytes=1 * KB,
    ),
    Interaction.BUY_REQUEST: InteractionProfile(
        static_objects=3.0,
        page_cacheable=0.0,
        app_cpu=20.0 * _MS,
        db_queries=2.0,
        db_heavy_queries=0.0,
        db_writes=0.5,
        db_inserts=0.3,
        response_bytes=12 * KB,
        db_result_bytes=5 * KB,
    ),
    Interaction.BUY_CONFIRM: InteractionProfile(
        static_objects=2.0,
        page_cacheable=0.0,
        app_cpu=22.0 * _MS,
        db_queries=2.0,
        db_heavy_queries=0.0,
        db_writes=2.0,
        db_inserts=3.0,
        response_bytes=10 * KB,
        db_result_bytes=4 * KB,
    ),
    Interaction.ORDER_INQUIRY: InteractionProfile(
        static_objects=2.0,
        page_cacheable=0.25,
        app_cpu=13.0 * _MS,
        db_queries=0.5,
        db_heavy_queries=0.0,
        db_writes=0.0,
        db_inserts=0.0,
        response_bytes=8 * KB,
        db_result_bytes=1 * KB,
    ),
    Interaction.ORDER_DISPLAY: InteractionProfile(
        static_objects=3.0,
        page_cacheable=0.0,
        app_cpu=26.0 * _MS,
        db_queries=1.5,
        db_heavy_queries=0.0,
        db_writes=0.0,
        db_inserts=0.0,
        response_bytes=14 * KB,
        db_result_bytes=6 * KB,
    ),
    Interaction.ADMIN_REQUEST: InteractionProfile(
        static_objects=2.0,
        page_cacheable=0.0,
        app_cpu=19.0 * _MS,
        db_queries=1.0,
        db_heavy_queries=0.0,
        db_writes=0.0,
        db_inserts=0.0,
        response_bytes=10 * KB,
        db_result_bytes=3 * KB,
    ),
    Interaction.ADMIN_CONFIRM: InteractionProfile(
        static_objects=2.0,
        page_cacheable=0.0,
        app_cpu=20.0 * _MS,
        db_queries=1.0,
        db_heavy_queries=0.0,
        db_writes=1.0,
        db_inserts=0.5,
        response_bytes=10 * KB,
        db_result_bytes=2 * KB,
    ),
}
