"""WIPS metrics.

TPC-W's primary metric is WIPS — web interactions per second — measured over
a measurement interval.  WIPSb and WIPSo are the same quantity measured
while the system runs the Browsing and Ordering mixes respectively
(§II.C of the paper).  :class:`WipsMeter` accumulates completions over a
measurement window (the DES backend feeds it; the analytic backend computes
throughput directly).
"""

from __future__ import annotations

from repro.tpcw.interactions import Interaction, InteractionCategory

__all__ = ["WipsMeter"]


class WipsMeter:
    """Counts completed web interactions within a measurement window."""

    def __init__(self) -> None:
        self._window_open = False
        self._start = 0.0
        self._stop = 0.0
        self._completed = 0
        self._errors = 0
        self._by_category = {c: 0 for c in InteractionCategory}

    def open_window(self, now: float) -> None:
        """Begin the measurement interval (end of warm-up)."""
        if self._window_open:
            raise RuntimeError("measurement window already open")
        self._window_open = True
        self._start = now
        self._completed = 0
        self._errors = 0
        self._by_category = {c: 0 for c in InteractionCategory}

    def close_window(self, now: float) -> None:
        """End the measurement interval (start of cool-down)."""
        if not self._window_open:
            raise RuntimeError("measurement window is not open")
        if now < self._start:
            raise ValueError("window closed before it opened")
        self._window_open = False
        self._stop = now

    @property
    def window_open(self) -> bool:
        """True between open_window and close_window."""
        return self._window_open

    def record_completion(self, interaction: Interaction) -> None:
        """Record one successfully completed interaction (if window open)."""
        if self._window_open:
            self._completed += 1
            self._by_category[interaction.category] += 1

    def record_error(self) -> None:
        """Record one failed interaction (rejected/errored; not counted)."""
        if self._window_open:
            self._errors += 1

    @property
    def completed(self) -> int:
        """Interactions completed inside the window."""
        return self._completed

    @property
    def errors(self) -> int:
        """Interactions failed inside the window."""
        return self._errors

    @property
    def duration(self) -> float:
        """Length of the (closed) measurement window."""
        if self._window_open:
            raise RuntimeError("window still open")
        return self._stop - self._start

    def wips(self) -> float:
        """Web interactions per second over the closed window."""
        d = self.duration
        if d <= 0:
            raise ValueError("measurement window has zero duration")
        return self._completed / d

    def error_rate(self) -> float:
        """Fraction of attempted interactions that failed."""
        total = self._completed + self._errors
        return self._errors / total if total else 0.0

    def category_rate(self, category: InteractionCategory) -> float:
        """Completions per second of one category (browse vs order)."""
        d = self.duration
        if d <= 0:
            raise ValueError("measurement window has zero duration")
        return self._by_category[category] / d
