"""Emulated-browser behaviour (the TPC-W load model).

TPC-W drives the system with a closed population of *emulated browsers*
(EBs): each EB repeatedly thinks for a random time, then issues its next web
interaction and waits for the response.  The think-time distribution is the
TPC-W specification's truncated exponential with a 7-second mean.

:class:`BrowserBehavior` is the pure (engine-agnostic) specification — both
the analytic backend (which needs only the mean think time) and the
discrete-event backend (which samples it per request) consume it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.tpcw.interactions import Interaction, WorkloadMix
from repro.tpcw.mix import MixSampler

__all__ = ["BrowserBehavior"]


@dataclass(frozen=True)
class BrowserBehavior:
    """Think-time distribution plus the interaction mix of one EB.

    Parameters follow the TPC-W specification: think times are exponential
    with ``mean_think_time`` (7 s), truncated at ``max_think_time`` (10× the
    mean).
    """

    mix: WorkloadMix
    mean_think_time: float = 7.0
    max_think_time: float = 70.0

    def __post_init__(self) -> None:
        if self.mean_think_time <= 0:
            raise ValueError("mean_think_time must be positive")
        if self.max_think_time < self.mean_think_time:
            raise ValueError("max_think_time must be >= mean_think_time")

    @property
    def effective_mean_think_time(self) -> float:
        """Mean of the truncated exponential (slightly below the nominal mean).

        For an exponential with rate 1/m truncated at T, the mean is
        ``m - T·exp(-T/m)/(1-exp(-T/m))``... computed exactly here so the
        analytic and simulated backends agree on the think time they model.
        """
        m = self.mean_think_time
        t = self.max_think_time
        p = np.exp(-t / m)
        # E[X | X <= T] for X ~ Exp(1/m).
        return float((m - (t + m) * p) / (1.0 - p))

    def sampler(self) -> MixSampler:
        """A sampler over this behaviour's mix."""
        return MixSampler(self.mix)

    def next_think_time(self, rng: np.random.Generator) -> float:
        """Draw one think time (truncated exponential)."""
        while True:
            t = float(rng.exponential(self.mean_think_time))
            if t <= self.max_think_time:
                return t

    def next_interaction(
        self, rng: np.random.Generator, sampler: MixSampler | None = None
    ) -> Interaction:
        """Draw the next interaction from the mix."""
        return (sampler or self.sampler()).sample(rng)
