"""TPC-W: the transactional web benchmark used as the performance metric.

The paper measures every experiment in WIPS (Web Interactions Per Second)
under the three TPC-W workload mixes of its Table 1 — Browsing (WIPSb),
Shopping (WIPS) and Ordering (WIPSo).  This package implements:

* the 14 web interactions and the exact Table 1 mix percentages
  (:mod:`repro.tpcw.interactions`),
* per-interaction *resource profiles* — how much static content, servlet
  CPU, database reads/writes each interaction generates
  (:mod:`repro.tpcw.profiles`),
* the item catalog at the paper's scale factor of 10,000 items with Zipf
  popularity (:mod:`repro.tpcw.catalog`),
* the closed-loop emulated-browser behaviour (:mod:`repro.tpcw.browser`),
* WIPS / WIPSb / WIPSo metric helpers (:mod:`repro.tpcw.metrics`).
"""

from repro.tpcw.browser import BrowserBehavior
from repro.tpcw.catalog import Catalog
from repro.tpcw.interactions import (
    BROWSING_MIX,
    Interaction,
    InteractionCategory,
    ORDERING_MIX,
    SHOPPING_MIX,
    STANDARD_MIXES,
    WorkloadMix,
)
from repro.tpcw.metrics import WipsMeter
from repro.tpcw.mix import MixSampler, expected_profile
from repro.tpcw.navigation import SITE_STRUCTURE, NavigationModel
from repro.tpcw.profiles import PROFILES, InteractionProfile
from repro.tpcw.wirt import WIRT_LIMITS, WirtTracker

__all__ = [
    "Interaction",
    "InteractionCategory",
    "WorkloadMix",
    "BROWSING_MIX",
    "SHOPPING_MIX",
    "ORDERING_MIX",
    "STANDARD_MIXES",
    "InteractionProfile",
    "PROFILES",
    "MixSampler",
    "expected_profile",
    "NavigationModel",
    "SITE_STRUCTURE",
    "Catalog",
    "BrowserBehavior",
    "WipsMeter",
    "WirtTracker",
    "WIRT_LIMITS",
]
