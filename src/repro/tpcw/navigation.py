"""The TPC-W navigation graph: Markov sessions over the 14 interactions.

TPC-W emulated browsers do not draw pages independently — they *navigate*:
a Search Request is followed by Search Results, a Buy Request by a Buy
Confirm, and so on.  The Table 1 mixes are the *stationary* distributions
of that navigation.  :class:`NavigationModel` builds, for any mix, a
transition matrix that

1. respects the site's session structure (a sparse set of allowed
   follow-up interactions per page), and
2. has the mix as its **exact** stationary distribution.

Construction: with probability ``structure_weight`` the browser follows a
structural edge (choosing among allowed successors proportionally to their
stationary weights), and with the remaining probability it "jumps" — picks
its next interaction from a jump distribution.  The jump distribution is
solved from the stationarity equation

    pi = structure_weight · pi·P_struct + (1 − structure_weight) · jump

so ``jump = (pi − structure_weight · pi·P_struct) / (1 − structure_weight)``.
A valid (non-negative) jump distribution exists whenever
``structure_weight`` is small enough; :meth:`max_structure_weight` computes
the largest feasible value and the constructor clips to it.

The i.i.d. sampler (:class:`~repro.tpcw.mix.MixSampler`) is the
``structure_weight = 0`` special case; throughput statistics are identical
(same stationary distribution), but the navigation model produces the
*correlated* request sequences a session-aware cache or affinity study
needs.
"""

from __future__ import annotations

from typing import Mapping, Optional, Sequence

import numpy as np

from repro.tpcw.interactions import Interaction, WorkloadMix

__all__ = ["SITE_STRUCTURE", "NavigationModel"]

_I = Interaction

#: Allowed follow-up interactions per page — the store's link structure.
#: (Derived from the TPC-W page flow: every page links home and to the
#: search form; listing pages link to product details; the order pipeline
#: is Cart → Registration → Buy Request → Buy Confirm.)
SITE_STRUCTURE: dict[Interaction, tuple[Interaction, ...]] = {
    _I.HOME: (_I.NEW_PRODUCTS, _I.BEST_SELLERS, _I.SEARCH_REQUEST,
              _I.PRODUCT_DETAIL, _I.ORDER_INQUIRY),
    _I.NEW_PRODUCTS: (_I.PRODUCT_DETAIL, _I.HOME, _I.SEARCH_REQUEST),
    _I.BEST_SELLERS: (_I.PRODUCT_DETAIL, _I.HOME, _I.SEARCH_REQUEST),
    _I.PRODUCT_DETAIL: (_I.SHOPPING_CART, _I.PRODUCT_DETAIL,
                        _I.SEARCH_REQUEST, _I.HOME),
    _I.SEARCH_REQUEST: (_I.SEARCH_RESULTS,),
    _I.SEARCH_RESULTS: (_I.PRODUCT_DETAIL, _I.SEARCH_REQUEST, _I.HOME),
    _I.SHOPPING_CART: (_I.CUSTOMER_REGISTRATION, _I.PRODUCT_DETAIL,
                       _I.SEARCH_REQUEST, _I.HOME),
    _I.CUSTOMER_REGISTRATION: (_I.BUY_REQUEST, _I.HOME),
    _I.BUY_REQUEST: (_I.BUY_CONFIRM, _I.SHOPPING_CART, _I.HOME),
    _I.BUY_CONFIRM: (_I.HOME, _I.SEARCH_REQUEST, _I.ORDER_INQUIRY),
    _I.ORDER_INQUIRY: (_I.ORDER_DISPLAY, _I.HOME),
    _I.ORDER_DISPLAY: (_I.HOME, _I.SEARCH_REQUEST),
    _I.ADMIN_REQUEST: (_I.ADMIN_CONFIRM,),
    _I.ADMIN_CONFIRM: (_I.HOME, _I.ADMIN_REQUEST),
}


class NavigationModel:
    """A session-structured Markov chain with the mix as its stationary law."""

    def __init__(
        self,
        mix: WorkloadMix,
        structure_weight: Optional[float] = None,
        structure: Mapping[Interaction, Sequence[Interaction]] = SITE_STRUCTURE,
    ) -> None:
        self.mix = mix
        self._interactions = list(Interaction)
        index = {i: k for k, i in enumerate(self._interactions)}
        n = len(self._interactions)
        pi = np.array([mix.weight(i) for i in self._interactions])

        # Structural kernel: follow an allowed link, biased by popularity.
        p_struct = np.zeros((n, n))
        for src, dests in structure.items():
            weights = np.array([max(pi[index[d]], 1e-12) for d in dests])
            weights = weights / weights.sum()
            for dest, w in zip(dests, weights):
                p_struct[index[src], index[dest]] = w
        self._p_struct = p_struct

        flow = pi @ p_struct  # structural inflow per page, at weight 1
        feasible = self._max_weight(pi, flow)
        if structure_weight is None:
            beta = 0.9 * feasible
        else:
            if not 0.0 <= structure_weight < 1.0:
                raise ValueError("structure_weight must be in [0, 1)")
            beta = min(structure_weight, feasible)
        self.structure_weight = float(beta)

        jump = (pi - beta * flow) / (1.0 - beta)
        jump = np.maximum(jump, 0.0)  # clip float dust
        self._jump = jump / jump.sum()
        self._transition = beta * p_struct + (1.0 - beta) * np.tile(
            self._jump, (n, 1)
        )
        self._cum = np.cumsum(self._transition, axis=1)
        self._cum[:, -1] = 1.0
        self._pi = pi

    @staticmethod
    def _max_weight(pi: np.ndarray, flow: np.ndarray) -> float:
        """Largest β with a non-negative jump distribution.

        ``jump_j >= 0`` requires ``pi_j >= β·flow_j`` for every j, so
        β ≤ min_j pi_j / flow_j (over pages with structural inflow).
        """
        with np.errstate(divide="ignore", invalid="ignore"):
            ratios = np.where(flow > 0, pi / flow, np.inf)
        return float(min(1.0, ratios.min()))

    # ------------------------------------------------------------------
    @property
    def transition_matrix(self) -> np.ndarray:
        """The row-stochastic transition matrix (read-only copy)."""
        return self._transition.copy()

    def stationary_distribution(self) -> np.ndarray:
        """The chain's stationary distribution, solved by power iteration."""
        pi = np.full(len(self._interactions), 1.0 / len(self._interactions))
        for _ in range(10_000):
            nxt = pi @ self._transition
            if np.abs(nxt - pi).max() < 1e-14:
                return nxt
            pi = nxt
        return pi

    def next_interaction(
        self, current: Interaction, rng: np.random.Generator
    ) -> Interaction:
        """Sample the follow-up of ``current``."""
        row = self._interactions.index(current)
        u = rng.random()
        col = int(np.searchsorted(self._cum[row], u, side="right"))
        return self._interactions[min(col, len(self._interactions) - 1)]

    def sample_session(
        self,
        rng: np.random.Generator,
        length: int,
        start: Optional[Interaction] = None,
    ) -> list[Interaction]:
        """A navigation session of ``length`` interactions."""
        if length < 1:
            raise ValueError("length must be >= 1")
        if start is None:
            u = rng.random()
            cdf = np.cumsum(self._pi)
            cdf[-1] = 1.0
            idx = int(np.searchsorted(cdf, u, side="right"))
            current = self._interactions[min(idx, len(self._interactions) - 1)]
        else:
            current = start
        out = [current]
        for _ in range(length - 1):
            current = self.next_interaction(current, rng)
            out.append(current)
        return out
