"""Sampling interactions from a workload mix, and mix-level aggregates."""

from __future__ import annotations

from bisect import bisect_right

import numpy as np

from repro.tpcw.interactions import Interaction, WorkloadMix
from repro.tpcw.profiles import PROFILES, InteractionProfile

__all__ = ["MixSampler", "expected_profile"]


class MixSampler:
    """Draw interactions i.i.d. according to a mix's weights.

    (The full TPC-W navigation graph is a Markov chain whose stationary
    distribution is the Table 1 mix; sampling the stationary distribution
    directly produces the same long-run interaction stream statistics, which
    is all the throughput metric observes.)
    """

    def __init__(self, mix: WorkloadMix) -> None:
        self.mix = mix
        self._interactions = list(Interaction)
        weights = np.array([mix.weight(i) for i in self._interactions])
        self._cdf = np.cumsum(weights)
        self._cdf[-1] = 1.0  # guard against float round-off
        # Python-list copy for the scalar path: bisect_right on a list is
        # ~10x cheaper than a scalar np.searchsorted and picks the exact
        # same index (same comparisons, side="right" semantics).
        self._cdf_list = self._cdf.tolist()
        self._last_index = len(self._interactions) - 1

    def sample(self, rng: np.random.Generator) -> Interaction:
        """One interaction drawn from the mix."""
        idx = bisect_right(self._cdf_list, rng.random())
        last = self._last_index
        return self._interactions[idx if idx < last else last]

    def sample_many(self, rng: np.random.Generator, n: int) -> list[Interaction]:
        """``n`` i.i.d. interactions (vectorized)."""
        u = rng.random(n)
        idx = np.searchsorted(self._cdf, u, side="right")
        idx = np.minimum(idx, len(self._interactions) - 1)
        return [self._interactions[i] for i in idx]


def expected_profile(mix: WorkloadMix) -> InteractionProfile:
    """Mix-averaged resource profile with *unconditional* back-end fields.

    The per-interaction profiles in :data:`repro.tpcw.profiles.PROFILES`
    state back-end demands (servlet CPU, database work) *conditional on the
    page actually being generated* — a cacheable page served from the proxy
    cache generates none.  The aggregate class the analytic backend uses
    needs the unconditional expectation, so back-end fields are weighted by
    each interaction's dynamic-generation probability ``(1 - page_cacheable)``
    here.  (Pages that are cacheable but *miss* the proxy cache are served
    as static regenerations by the application tier without database work,
    which the proxy model accounts for separately.)

    Front-end fields (static objects, response size) and ``page_cacheable``
    are plain mix averages.
    """
    front = dict.fromkeys(("static_objects", "response_bytes"), 0.0)
    backend = dict.fromkeys(
        ("app_cpu", "db_queries", "db_heavy_queries", "db_writes",
         "db_inserts", "db_result_bytes"),
        0.0,
    )
    cacheable = 0.0
    for interaction in Interaction:
        w = mix.weight(interaction)
        profile = PROFILES[interaction]
        cacheable += w * profile.page_cacheable
        dynamic = 1.0 - profile.page_cacheable
        for key in front:
            front[key] += w * getattr(profile, key)
        for key in backend:
            backend[key] += w * dynamic * getattr(profile, key)
    return InteractionProfile(page_cacheable=cacheable, **front, **backend)
