"""The 14 TPC-W web interactions and the Table 1 workload mixes.

The percentages below are transcribed verbatim from Table 1 of the paper
("TPC-W benchmark workloads"): the Browsing mix is 95% browse / 5% order,
Shopping 80/20, Ordering 50/50.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Mapping

__all__ = [
    "Interaction",
    "InteractionCategory",
    "WorkloadMix",
    "BROWSING_MIX",
    "SHOPPING_MIX",
    "ORDERING_MIX",
    "STANDARD_MIXES",
]


class InteractionCategory(enum.Enum):
    """TPC-W classifies interactions as Browse or Order (Table 1)."""

    BROWSE = "browse"
    ORDER = "order"


class Interaction(enum.Enum):
    """One of the 14 TPC-W web interactions."""

    HOME = "Home"
    NEW_PRODUCTS = "New Products"
    BEST_SELLERS = "Best Sellers"
    PRODUCT_DETAIL = "Product Detail"
    SEARCH_REQUEST = "Search Request"
    SEARCH_RESULTS = "Search Results"
    SHOPPING_CART = "Shopping Cart"
    CUSTOMER_REGISTRATION = "Customer Registration"
    BUY_REQUEST = "Buy Request"
    BUY_CONFIRM = "Buy Confirm"
    ORDER_INQUIRY = "Order Inquiry"
    ORDER_DISPLAY = "Order Display"
    ADMIN_REQUEST = "Admin Request"
    ADMIN_CONFIRM = "Admin Confirm"

    @property
    def category(self) -> InteractionCategory:
        """Browse/Order classification per Table 1."""
        return _CATEGORIES[self]


_BROWSE = (
    Interaction.HOME,
    Interaction.NEW_PRODUCTS,
    Interaction.BEST_SELLERS,
    Interaction.PRODUCT_DETAIL,
    Interaction.SEARCH_REQUEST,
    Interaction.SEARCH_RESULTS,
)
_ORDER = (
    Interaction.SHOPPING_CART,
    Interaction.CUSTOMER_REGISTRATION,
    Interaction.BUY_REQUEST,
    Interaction.BUY_CONFIRM,
    Interaction.ORDER_INQUIRY,
    Interaction.ORDER_DISPLAY,
    Interaction.ADMIN_REQUEST,
    Interaction.ADMIN_CONFIRM,
)
_CATEGORIES: dict[Interaction, InteractionCategory] = {
    **{i: InteractionCategory.BROWSE for i in _BROWSE},
    **{i: InteractionCategory.ORDER for i in _ORDER},
}


@dataclass(frozen=True)
class WorkloadMix:
    """A named assignment of weights to the 14 interactions.

    Weights are fractions summing to 1 (Table 1 gives percentages).
    """

    name: str
    weights: Mapping[Interaction, float]

    def __post_init__(self) -> None:
        missing = set(Interaction) - set(self.weights)
        if missing:
            raise ValueError(
                f"mix {self.name!r} missing weights for "
                f"{sorted(i.value for i in missing)}"
            )
        extra = set(self.weights) - set(Interaction)
        if extra:
            raise ValueError(f"mix {self.name!r} has unknown interactions {extra}")
        total = sum(self.weights.values())
        if abs(total - 1.0) > 1e-6:
            raise ValueError(
                f"mix {self.name!r} weights sum to {total:.6f}, expected 1.0"
            )
        if any(w < 0 for w in self.weights.values()):
            raise ValueError(f"mix {self.name!r} has a negative weight")

    def weight(self, interaction: Interaction) -> float:
        """The fraction of interactions of this kind."""
        return self.weights[interaction]

    def category_fraction(self, category: InteractionCategory) -> float:
        """Total weight of Browse (or Order) interactions."""
        return sum(
            w for i, w in self.weights.items() if i.category is category
        )

    def fingerprint(self) -> tuple:
        """Content identity of the mix (for measurement caching).

        The display name is excluded: two mixes with identical weights are
        the same workload however they are labelled.
        """
        return tuple(
            (i.value, self.weights[i]) for i in sorted(Interaction, key=lambda x: x.value)
        )

    def __str__(self) -> str:
        return self.name

    @staticmethod
    def blend(a: "WorkloadMix", b: "WorkloadMix", t: float,
              name: str | None = None) -> "WorkloadMix":
        """Linear interpolation between two mixes (``t=0`` → a, ``t=1`` → b).

        Real traffic drifts gradually between regimes (a sale announcement
        shifts browsing toward ordering over hours, not instantly); blended
        mixes let experiments model that drift.
        """
        if not 0.0 <= t <= 1.0:
            raise ValueError(f"t must be in [0, 1], got {t}")
        weights = {
            i: (1.0 - t) * a.weight(i) + t * b.weight(i) for i in Interaction
        }
        return WorkloadMix(name or f"{a.name}~{b.name}@{t:.2f}", weights)


def _mix(name: str, percent: Mapping[Interaction, float]) -> WorkloadMix:
    return WorkloadMix(name, {i: p / 100.0 for i, p in percent.items()})


#: Table 1, "Browsing (WIPSb)" column — 95% browse / 5% order.
BROWSING_MIX = _mix(
    "browsing",
    {
        Interaction.HOME: 29.00,
        Interaction.NEW_PRODUCTS: 11.00,
        Interaction.BEST_SELLERS: 11.00,
        Interaction.PRODUCT_DETAIL: 21.00,
        Interaction.SEARCH_REQUEST: 12.00,
        Interaction.SEARCH_RESULTS: 11.00,
        Interaction.SHOPPING_CART: 2.00,
        Interaction.CUSTOMER_REGISTRATION: 0.82,
        Interaction.BUY_REQUEST: 0.75,
        Interaction.BUY_CONFIRM: 0.69,
        Interaction.ORDER_INQUIRY: 0.30,
        Interaction.ORDER_DISPLAY: 0.25,
        Interaction.ADMIN_REQUEST: 0.10,
        Interaction.ADMIN_CONFIRM: 0.09,
    },
)

#: Table 1, "Shopping (WIPS)" column — 80% browse / 20% order.
SHOPPING_MIX = _mix(
    "shopping",
    {
        Interaction.HOME: 16.00,
        Interaction.NEW_PRODUCTS: 5.00,
        Interaction.BEST_SELLERS: 5.00,
        Interaction.PRODUCT_DETAIL: 17.00,
        Interaction.SEARCH_REQUEST: 20.00,
        Interaction.SEARCH_RESULTS: 17.00,
        Interaction.SHOPPING_CART: 11.60,
        Interaction.CUSTOMER_REGISTRATION: 3.00,
        Interaction.BUY_REQUEST: 2.60,
        Interaction.BUY_CONFIRM: 1.20,
        Interaction.ORDER_INQUIRY: 0.75,
        Interaction.ORDER_DISPLAY: 0.66,
        Interaction.ADMIN_REQUEST: 0.10,
        Interaction.ADMIN_CONFIRM: 0.09,
    },
)

#: Table 1, "Ordering (WIPSo)" column — 50% browse / 50% order.
ORDERING_MIX = _mix(
    "ordering",
    {
        Interaction.HOME: 9.12,
        Interaction.NEW_PRODUCTS: 0.46,
        Interaction.BEST_SELLERS: 0.46,
        Interaction.PRODUCT_DETAIL: 12.35,
        Interaction.SEARCH_REQUEST: 14.53,
        Interaction.SEARCH_RESULTS: 13.08,
        Interaction.SHOPPING_CART: 13.53,
        Interaction.CUSTOMER_REGISTRATION: 12.86,
        Interaction.BUY_REQUEST: 12.73,
        Interaction.BUY_CONFIRM: 10.18,
        Interaction.ORDER_INQUIRY: 0.25,
        Interaction.ORDER_DISPLAY: 0.22,
        Interaction.ADMIN_REQUEST: 0.12,
        Interaction.ADMIN_CONFIRM: 0.11,
    },
)

#: The three standard mixes, keyed by name.
STANDARD_MIXES: dict[str, WorkloadMix] = {
    m.name: m for m in (BROWSING_MIX, SHOPPING_MIX, ORDERING_MIX)
}
