"""Parallel replications, profile diagnostics and outage handling."""

import pytest

from repro.cluster.node import Role
from repro.cluster.topology import ClusterSpec
from repro.des.backend import SimulationBackend, _SimCluster
from repro.faults.backend import ClusterOutageError, FaultyBackend
from repro.faults.plan import FaultPlan
from repro.model.base import MeasurementCache, MemoizedBackend, Scenario
from repro.sim.core import Environment
from repro.tpcw.interactions import SHOPPING_MIX
from repro.util.rng import spawn_rng

from tests.des_golden_cases import measurement_to_jsonable

TIME_SCALE = 0.02


@pytest.fixture(scope="module")
def scenario():
    return Scenario(
        cluster=ClusterSpec.three_tier(1, 1, 1),
        mix=SHOPPING_MIX,
        population=80,
    )


@pytest.fixture(scope="module")
def config(scenario):
    return scenario.cluster.default_configuration()


class TestReplications:
    def test_default_is_bit_identical_to_single_iteration(
        self, scenario, config
    ):
        plain = SimulationBackend(time_scale=TIME_SCALE)
        explicit = SimulationBackend(time_scale=TIME_SCALE, replications=1)
        assert measurement_to_jsonable(
            plain.measure(scenario, config, seed=7)
        ) == measurement_to_jsonable(explicit.measure(scenario, config, seed=7))

    def test_serial_and_parallel_merges_identical(self, scenario, config):
        serial = SimulationBackend(
            time_scale=TIME_SCALE, replications=3, replication_jobs=1
        )
        parallel = SimulationBackend(
            time_scale=TIME_SCALE, replications=3, replication_jobs=2
        )
        m_serial = serial.measure(scenario, config, seed=7)
        m_parallel = parallel.measure(scenario, config, seed=7)
        assert measurement_to_jsonable(m_serial) == measurement_to_jsonable(
            m_parallel
        )

    def test_merge_diagnostics(self, scenario, config):
        backend = SimulationBackend(
            time_scale=TIME_SCALE, replications=3, replication_jobs=1
        )
        m = backend.measure(scenario, config, seed=7)
        d = m.diagnostics
        assert d["replication.count"] == 3.0
        assert d["replication.wips_ci95"] >= 0.0
        reps = [d[f"replication.{i}.wips"] for i in range(3)]
        assert m.wips == pytest.approx(sum(reps) / 3.0)
        # Replication 0 is the plain seed; the others derive from it.
        plain = SimulationBackend(time_scale=TIME_SCALE)
        assert reps[0] == plain.measure(scenario, config, seed=7).wips
        assert len(set(reps)) == 3

    @pytest.mark.parametrize(
        "kwargs", [{"replications": 0}, {"replication_jobs": 0}]
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            SimulationBackend(time_scale=TIME_SCALE, **kwargs)


class TestCacheToken:
    def test_default_token_keeps_legacy_keys(self, scenario, config):
        backend = SimulationBackend(time_scale=TIME_SCALE)
        assert backend.measurement_cache_token() == ()
        cache = MeasurementCache()
        assert cache.key(scenario, config, 7) == cache.key(
            scenario, config, 7, token=()
        )
        assert len(cache.key(scenario, config, 7)) == 3

    def test_replicated_token_separates_keys(self, scenario, config):
        backend = SimulationBackend(time_scale=TIME_SCALE, replications=4)
        token = backend.measurement_cache_token()
        assert token == ("replications", 4)
        cache = MeasurementCache()
        base = cache.key(scenario, config, 7)
        keyed = cache.key(scenario, config, 7, token=token)
        assert keyed != base
        assert keyed[:3] == base

    def test_wrappers_delegate_token(self, scenario):
        des = SimulationBackend(time_scale=TIME_SCALE, replications=2)
        assert MemoizedBackend(des).measurement_cache_token() == (
            "replications", 2,
        )
        faulty = FaultyBackend(des, FaultPlan(events=()))
        assert faulty.measurement_cache_token() == ("replications", 2)


class TestProfile:
    def test_profile_diagnostics_ride_along(self, scenario, config):
        plain = SimulationBackend(time_scale=TIME_SCALE)
        profiled = SimulationBackend(time_scale=TIME_SCALE, profile=True)
        m_plain = plain.measure(scenario, config, seed=3)
        m_prof = profiled.measure(scenario, config, seed=3)
        # Profiling is observability only: the measurement is unchanged.
        assert m_prof.wips == m_plain.wips
        d = m_prof.diagnostics
        assert d["profile.entries_scheduled"] > 0
        assert d["profile.entries_dispatched"] > 0
        assert d["profile.fast_resumes"] > 0
        assert d["profile.events_per_second"] > 0
        assert d["profile.rng_scalar_draws"] > 0
        assert d["profile.rng_streams"] >= scenario.population
        assert d["profile.measure_seconds"] > 0
        assert not any(
            k.startswith("profile.") for k in m_plain.diagnostics
        )


class TestOutages:
    def test_fault_plan_emptying_a_tier_raises_outage(self, scenario, config):
        backend = FaultyBackend(
            SimulationBackend(time_scale=TIME_SCALE),
            FaultPlan.node_crash("db0", at=0),
        )
        with pytest.raises(ClusterOutageError):
            backend.measure(scenario, config, seed=1)

    def test_lopsided_work_lines_raise_outage_at_build(self):
        cluster = ClusterSpec.three_tier(2, 2, 1)
        scenario = Scenario(
            cluster=cluster,
            mix=SHOPPING_MIX,
            population=60,
            work_lines={
                "a": ("proxy0", "app0", "db0"),
                "b": ("proxy1", "app1"),  # no DB node: cannot serve
            },
        )
        backend = SimulationBackend(time_scale=TIME_SCALE)
        with pytest.raises(ClusterOutageError):
            backend.measure(
                scenario, cluster.default_configuration(), seed=1
            )

    def test_pick_on_emptied_tier_raises_outage_not_valueerror(self):
        # Defensive path: a tier emptied after construction must surface
        # as an outage, not as numpy's bare ValueError from integers(0).
        backend = SimulationBackend(time_scale=TIME_SCALE)
        cluster = ClusterSpec.three_tier(1, 1, 1)
        scenario = Scenario(
            cluster=cluster, mix=SHOPPING_MIX, population=10
        )
        sim = _SimCluster(
            Environment(),
            cluster,
            cluster.default_configuration(),
            backend._context(scenario),
            backend.memory,
        )
        sim.lines["all"][Role.DB] = []
        with pytest.raises(ClusterOutageError):
            sim.pick("all", Role.DB, spawn_rng(0))
