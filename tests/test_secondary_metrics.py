"""Tests for the secondary TPC-W metrics both backends report."""

import pytest

from repro.cluster.topology import ClusterSpec
from repro.des.backend import SimulationBackend
from repro.model.analytic import AnalyticBackend
from repro.model.base import Scenario
from repro.model.noise import NoiseModel
from repro.tpcw.interactions import BROWSING_MIX, ORDERING_MIX


@pytest.fixture(scope="module")
def cluster():
    return ClusterSpec.three_tier(1, 1, 1)


class TestAnalyticCategorySplit:
    def test_split_follows_mix(self, cluster):
        backend = AnalyticBackend(noise=NoiseModel(0.0, 0.0, 0.0))
        sc = Scenario(cluster=cluster, mix=BROWSING_MIX, population=400)
        m = backend.measure(sc, cluster.default_configuration(), seed=1)
        assert m.diagnostics["wips_browse"] == pytest.approx(0.95 * m.wips)
        assert m.diagnostics["wips_order"] == pytest.approx(0.05 * m.wips)

    def test_ordering_mix_is_half_half(self, cluster):
        backend = AnalyticBackend(noise=NoiseModel(0.0, 0.0, 0.0))
        sc = Scenario(cluster=cluster, mix=ORDERING_MIX, population=400)
        m = backend.measure(sc, cluster.default_configuration(), seed=1)
        assert m.diagnostics["wips_browse"] == pytest.approx(
            m.diagnostics["wips_order"]
        )


class TestDesSecondaryMetrics:
    @pytest.fixture(scope="class")
    def measurement(self, cluster):
        backend = SimulationBackend(time_scale=0.05)
        sc = Scenario(cluster=cluster, mix=BROWSING_MIX, population=300)
        return backend.measure(sc, cluster.default_configuration(), seed=2)

    def test_category_rates_sum_to_wips(self, measurement):
        total = (
            measurement.diagnostics["wips_browse"]
            + measurement.diagnostics["wips_order"]
        )
        assert total == pytest.approx(measurement.wips, rel=1e-6)

    def test_category_split_near_mix(self, measurement):
        share = measurement.diagnostics["wips_browse"] / measurement.wips
        assert share == pytest.approx(0.95, abs=0.03)

    def test_latency_percentiles_ordered(self, measurement):
        p50 = measurement.diagnostics["rt_p50"]
        p95 = measurement.diagnostics["rt_p95"]
        assert 0.0 < p50 <= p95
        # The mean sits between the median and the tail for this skew.
        assert p50 <= measurement.response_time * 1.5
