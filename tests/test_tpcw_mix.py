"""Tests for mix sampling and the aggregate profile computation."""

import numpy as np
import pytest

from repro.tpcw.interactions import (
    BROWSING_MIX,
    Interaction,
    ORDERING_MIX,
    SHOPPING_MIX,
)
from repro.tpcw.mix import MixSampler, expected_profile
from repro.tpcw.profiles import PROFILES
from repro.cluster.context import mix_burstiness


class TestMixSampler:
    def test_empirical_distribution_matches_weights(self):
        sampler = MixSampler(SHOPPING_MIX)
        rng = np.random.default_rng(0)
        n = 40_000
        samples = sampler.sample_many(rng, n)
        counts = {i: 0 for i in Interaction}
        for s in samples:
            counts[s] += 1
        for interaction in (Interaction.HOME, Interaction.SHOPPING_CART,
                            Interaction.SEARCH_REQUEST):
            expected = SHOPPING_MIX.weight(interaction)
            assert counts[interaction] / n == pytest.approx(expected, abs=0.01)

    def test_sample_one_matches_many(self):
        sampler = MixSampler(BROWSING_MIX)
        a = [sampler.sample(np.random.default_rng(i)) for i in range(50)]
        assert all(isinstance(i, Interaction) for i in a)

    def test_reproducible(self):
        sampler = MixSampler(ORDERING_MIX)
        a = sampler.sample_many(np.random.default_rng(5), 100)
        b = sampler.sample_many(np.random.default_rng(5), 100)
        assert a == b

    def test_rare_interactions_eventually_sampled(self):
        sampler = MixSampler(BROWSING_MIX)
        samples = set(sampler.sample_many(np.random.default_rng(1), 30_000))
        assert Interaction.ADMIN_CONFIRM in samples  # weight 0.0009


class TestExpectedProfile:
    def test_backend_fields_weighted_by_dynamic_probability(self):
        profile = expected_profile(BROWSING_MIX)
        manual = sum(
            BROWSING_MIX.weight(i)
            * (1.0 - PROFILES[i].page_cacheable)
            * PROFILES[i].app_cpu
            for i in Interaction
        )
        assert profile.app_cpu == pytest.approx(manual)

    def test_front_fields_plain_average(self):
        profile = expected_profile(SHOPPING_MIX)
        manual = sum(
            SHOPPING_MIX.weight(i) * PROFILES[i].static_objects
            for i in Interaction
        )
        assert profile.static_objects == pytest.approx(manual)

    def test_ordering_heavier_on_database_than_browsing(self):
        b = expected_profile(BROWSING_MIX)
        o = expected_profile(ORDERING_MIX)
        assert o.db_writes > 5 * b.db_writes
        assert o.db_inserts > 5 * b.db_inserts
        assert o.app_cpu > b.app_cpu

    def test_browsing_heavier_on_static_content(self):
        b = expected_profile(BROWSING_MIX)
        o = expected_profile(ORDERING_MIX)
        assert b.static_objects > o.static_objects
        assert b.page_cacheable > o.page_cacheable

    def test_cacheable_fraction_in_unit_interval(self):
        for mix in (BROWSING_MIX, SHOPPING_MIX, ORDERING_MIX):
            profile = expected_profile(mix)
            assert 0.0 < profile.page_cacheable < 1.0


class TestBurstiness:
    def test_browsing_burstier_than_ordering(self):
        """The paper: browsing request characteristics 'change dramatically'
        while ordering's 'do not change dramatically'."""
        assert mix_burstiness(BROWSING_MIX) > mix_burstiness(ORDERING_MIX)

    def test_bounded(self):
        for mix in (BROWSING_MIX, SHOPPING_MIX, ORDERING_MIX):
            assert 0.0 <= mix_burstiness(mix) <= 1.0
