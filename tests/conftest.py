"""Shared pytest configuration.

The CI sanitize job runs the parallel/shared-engine suites with
``REPRO_SANITIZE=1``, which makes the ``repro.parallel`` hot objects
construct tracked locks and run the RPL151–RPL154 checks while the
ordinary tests exercise them.  Any finding still recorded when the
session ends is a real race/determinism bug in the instrumented code:
tests that *inject* violations on purpose do so inside
``sanitizer.scope()``, whose findings never reach the process-wide
list.  The gate below turns leftovers into a session failure.
"""

from __future__ import annotations

import os

import pytest


@pytest.fixture(scope="session", autouse=True)
def _sanitizer_session_gate():
    yield
    if os.environ.get("REPRO_SANITIZE", "") in ("", "0"):
        return
    from repro.lint.sanitizer import findings

    leftovers = findings()
    assert not leftovers, (
        "runtime sanitizer recorded findings during the test session:\n"
        + "\n".join(
            f"{f.path}:{f.line}: {f.rule} {f.message}" for f in leftovers
        )
    )
