"""The batched MVA solver must match the scalar solver, bit for bit.

The batch path exists purely for speed: rows are stacked on a batch axis,
solved in one vectorized fixed point, and compacted away as they
converge.  None of that may change numbers — the contract (and what the
experiment pipeline's determinism rests on) is that every field of every
result equals the scalar solver's output exactly.  The property-style
test below checks that across randomized station sets, populations and
multi-server configurations, far beyond the issue's 1e-10 bar.
"""

import warnings

import numpy as np
import pytest

from repro.model.mva import MvaNetwork, Station, solve_mva, solve_mva_batch


def random_network(rng: np.random.Generator) -> MvaNetwork:
    n = int(rng.integers(0, 7))
    stations = tuple(
        Station(
            name=f"s{j}",
            demand=float(rng.uniform(0.0005, 0.08)),
            servers=int(rng.integers(1, 5)),
        )
        for j in range(n)
    )
    return MvaNetwork(
        stations=stations,
        population=int(rng.integers(1, 900)),
        think_time=float(rng.uniform(0.0, 8.0)),
        extra_delay=float(rng.uniform(0.0, 0.1)),
    )


class TestBatchMatchesScalar:
    @pytest.mark.parametrize("seed", range(10))
    def test_randomized_networks_bit_identical(self, seed):
        """30 random networks per seed: every result field matches exactly."""
        rng = np.random.default_rng(seed)
        nets = [random_network(rng) for _ in range(30)]
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            scalar = [
                solve_mva(
                    list(net.stations),
                    net.population,
                    net.think_time,
                    extra_delay=net.extra_delay,
                )
                for net in nets
            ]
            batch = solve_mva_batch(nets)
        assert len(batch) == len(nets)
        for a, b in zip(scalar, batch):
            assert b.throughput == a.throughput
            assert b.response_time == a.response_time
            assert b.residence == a.residence
            assert b.queue == a.queue
            assert b.utilization == a.utilization
            assert b.iterations == a.iterations
            assert b.converged == a.converged

    def test_within_issue_tolerance(self):
        """The headline acceptance bound: agreement to 1e-10 (we hold 0)."""
        rng = np.random.default_rng(99)
        nets = [random_network(rng) for _ in range(50)]
        scalar = [
            solve_mva(
                list(net.stations),
                net.population,
                net.think_time,
                extra_delay=net.extra_delay,
            )
            for net in nets
        ]
        batch = solve_mva_batch(nets)
        for a, b in zip(scalar, batch):
            assert abs(b.throughput - a.throughput) <= 1e-10
            for name in a.residence:
                assert abs(b.residence[name] - a.residence[name]) <= 1e-10

    def test_heterogeneous_station_counts_one_call(self):
        """Networks of different sizes may share one batch call."""
        nets = [
            MvaNetwork((), 10, 1.0),
            MvaNetwork((Station("a", 0.01),), 50, 2.0),
            MvaNetwork(
                (Station("a", 0.01), Station("b", 0.02, servers=4)), 200, 3.0
            ),
        ]
        batch = solve_mva_batch(nets)
        for net, got in zip(nets, batch):
            want = solve_mva(
                list(net.stations), net.population, net.think_time,
                extra_delay=net.extra_delay,
            )
            assert got.throughput == want.throughput
            assert got.queue == want.queue

    def test_zero_station_network(self):
        """A delay-only network is pure think time: X = N / (Z + delays)."""
        (res,) = solve_mva_batch([MvaNetwork((), 40, 2.0, extra_delay=0.5)])
        assert res.throughput == pytest.approx(40 / 2.5)
        assert res.converged

    def test_empty_batch(self):
        assert solve_mva_batch([]) == []

    def test_submission_order_preserved(self):
        """Grouping by station count must not reorder results."""
        rng = np.random.default_rng(3)
        nets = [random_network(rng) for _ in range(20)]
        batch = solve_mva_batch(nets)
        for net, got in zip(nets, batch):
            want = solve_mva(
                list(net.stations), net.population, net.think_time,
                extra_delay=net.extra_delay,
            )
            assert got.throughput == want.throughput


class TestConvergenceReporting:
    def test_scalar_warns_and_flags_non_convergence(self):
        stations = [Station("cpu", 0.05), Station("disk", 0.03)]
        with pytest.warns(RuntimeWarning, match="did not converge"):
            res = solve_mva(stations, 500, 1.0, max_iter=2)
        assert res.converged is False
        assert res.iterations == 2

    def test_scalar_converged_result_is_flagged(self):
        res = solve_mva([Station("cpu", 0.01)], 50, 1.0)
        assert res.converged is True
        assert res.iterations >= 1

    def test_batch_warns_like_scalar(self):
        nets = [
            MvaNetwork((Station("cpu", 0.05), Station("disk", 0.03)), 500, 1.0)
            for _ in range(3)
        ]
        with warnings.catch_warnings(record=True) as ws:
            warnings.simplefilter("always")
            batch = solve_mva_batch(nets, max_iter=2)
        assert sum(issubclass(w.category, RuntimeWarning) for w in ws) == 3
        assert all(not r.converged for r in batch)
        with warnings.catch_warnings(record=True) as ws:
            warnings.simplefilter("always")
            scalar = solve_mva(list(nets[0].stations), 500, 1.0, max_iter=2)
        assert batch[0].throughput == scalar.throughput

    def test_mva_network_validation(self):
        with pytest.raises(ValueError):
            MvaNetwork((), 0, 1.0)
        with pytest.raises(ValueError):
            MvaNetwork((), 10, -1.0)
