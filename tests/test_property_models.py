"""Property-based tests for the statistics, queueing and cache models."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.model.mva import Station, solve_mva
from repro.model.pools import mmck
from repro.tpcw.catalog import Catalog
from repro.util.stats import RunningStats

finite_floats = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)


class TestRunningStatsProperties:
    @given(st.lists(finite_floats, min_size=1, max_size=50))
    def test_matches_numpy(self, data):
        s = RunningStats(data)
        assert s.mean == pytest.approx(float(np.mean(data)), rel=1e-9, abs=1e-7)
        if len(data) > 1:
            assert s.variance == pytest.approx(
                float(np.var(data, ddof=1)), rel=1e-6, abs=1e-6
            )

    @given(
        st.lists(finite_floats, min_size=1, max_size=30),
        st.lists(finite_floats, min_size=1, max_size=30),
    )
    def test_merge_equals_concatenation(self, a, b):
        merged = RunningStats(a).merge(RunningStats(b))
        combined = RunningStats(a + b)
        assert merged.mean == pytest.approx(combined.mean, rel=1e-9, abs=1e-7)
        assert merged.variance == pytest.approx(
            combined.variance, rel=1e-6, abs=1e-6
        )

    @given(st.lists(finite_floats, min_size=1, max_size=50))
    def test_min_le_mean_le_max(self, data):
        s = RunningStats(data)
        assert s.minimum - 1e-9 <= s.mean <= s.maximum + 1e-9


class TestMvaProperties:
    @settings(max_examples=60, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=1e-4, max_value=1.0),
                st.integers(min_value=1, max_value=8),
            ),
            min_size=1,
            max_size=5,
        ),
        st.integers(min_value=1, max_value=500),
        st.floats(min_value=0.0, max_value=100.0),
    )
    def test_invariants(self, station_specs, population, think):
        stations = [
            Station(f"s{i}", d, c) for i, (d, c) in enumerate(station_specs)
        ]
        result = solve_mva(stations, population, think)
        # Throughput positive and bounded by every capacity limit.
        assert result.throughput > 0
        for (d, c) in station_specs:
            assert result.throughput <= c / d * 1.01
        # Bounded by N / (Z + sum D) from below... and N/Z from above.
        if think > 0:
            assert result.throughput <= population / think * 1.01
        # Utilizations in [0, 1].
        for u in result.utilization.values():
            assert -1e-9 <= u <= 1.0 + 1e-9
        # Queues non-negative.
        for q in result.queue.values():
            assert q >= -1e-9

    @settings(max_examples=30, deadline=None)
    @given(st.integers(min_value=1, max_value=200))
    def test_monotone_in_population(self, n):
        stations = [Station("s", 0.05)]
        x1 = solve_mva(stations, n, 1.0).throughput
        x2 = solve_mva(stations, n + 10, 1.0).throughput
        assert x2 >= x1 - 1e-6


class TestMmckProperties:
    @settings(max_examples=80, deadline=None)
    @given(
        st.floats(min_value=0.0, max_value=50.0),
        st.floats(min_value=1e-3, max_value=10.0),
        st.integers(min_value=1, max_value=64),
        st.integers(min_value=0, max_value=64),
    )
    def test_invariants(self, lam, hold, servers, extra):
        res = mmck(lam, hold, servers, servers + extra)
        assert 0.0 <= res.blocking <= 1.0
        assert res.wait >= 0.0
        assert 0.0 <= res.busy <= servers + 1e-9
        assert math.isfinite(res.wait)
        # Accepted throughput cannot exceed the pool's service capacity.
        accepted = lam * (1 - res.blocking)
        assert accepted <= servers / hold + 1e-6


class TestCatalogProperties:
    @settings(max_examples=20, deadline=None)
    @given(
        st.integers(min_value=50, max_value=2000),
        st.floats(min_value=0.0, max_value=1.5),
        st.integers(min_value=0, max_value=2**31),
    )
    def test_hit_fraction_in_unit_interval(self, scale, zipf, seed):
        cat = Catalog(scale=scale, zipf_exponent=zipf, seed=seed)
        for cache in (0.0, 1e6, 1e9):
            h = cat.hit_fraction(cache)
            assert 0.0 <= h <= 1.0

    @settings(max_examples=20, deadline=None)
    @given(
        st.integers(min_value=50, max_value=1000),
        st.integers(min_value=0, max_value=2**31),
        st.lists(
            st.floats(min_value=1e4, max_value=1e9),
            min_size=2, max_size=6,
        ),
    )
    def test_hit_fraction_monotone_in_capacity(self, scale, seed, sizes):
        cat = Catalog(scale=scale, seed=seed)
        sizes = sorted(sizes)
        hits = [cat.hit_fraction(s) for s in sizes]
        assert all(a <= b + 1e-12 for a, b in zip(hits, hits[1:]))

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=0, max_value=2**31))
    def test_tighter_bounds_never_increase_hits(self, seed):
        cat = Catalog(scale=500, seed=seed)
        cache = 8e6
        wide = cat.hit_fraction(cache, 0.0, 1e9)
        narrow = cat.hit_fraction(cache, 2048.0, 64 * 1024.0)
        assert narrow <= wide + 1e-12
