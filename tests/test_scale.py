"""Tests for the scale axis: approximation knob, wide topologies, CLI."""

import pytest

from repro.cluster.node import Role
from repro.cluster.topology import ClusterSpec
from repro.experiments.runner import ExperimentConfig
from repro.model.analytic import APPROXIMATIONS, AnalyticBackend
from repro.model.base import Scenario
from repro.model.noise import NoiseModel
from repro.tpcw.interactions import STANDARD_MIXES
from repro.util.units import parse_count


def _scenario(cluster, population=2000):
    return Scenario(
        cluster=cluster,
        mix=STANDARD_MIXES["shopping"],
        population=population,
    )


class TestParseCount:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("750", 750),
            ("2k", 2000),
            ("2K", 2000),
            ("1m", 1_000_000),
            ("1.5m", 1_500_000),
            ("2.5k", 2500),
            ("1g", 1_000_000_000),
            ("1_000", 1000),
        ],
    )
    def test_valid(self, text, expected):
        assert parse_count(text) == expected

    @pytest.mark.parametrize("text", ["", "x", "1x", "1.5", "k", "1.0001k"])
    def test_invalid(self, text):
        with pytest.raises(ValueError):
            parse_count(text)


class TestWideTopology:
    def test_wide_defaults(self):
        cluster = ClusterSpec.wide()
        assert cluster.num_nodes == 64 + 128 + 16
        assert cluster.tier_size(Role.APP) == 128

    def test_replica_groups(self):
        cluster = ClusterSpec.wide(4, 6, 2)
        groups = cluster.replica_groups()
        assert sorted(len(v) for v in groups.values()) == [2, 4, 6]

    def test_work_lines_on_wide(self):
        cluster = ClusterSpec.wide(4, 8, 2)
        lines = cluster.work_lines(2)
        assert len(lines) == 2
        for members in lines.values():
            roles = {cluster.role_of(n) for n in members}
            assert roles == set(Role)

    def test_move_nodes_batch(self):
        cluster = ClusterSpec.wide(4, 4, 2)
        apps = cluster.nodes_in(Role.APP)[:2]
        moved = cluster.move_nodes(apps, Role.PROXY)
        assert moved.tier_size(Role.PROXY) == 6
        assert moved.tier_size(Role.APP) == 2
        with pytest.raises(ValueError):
            cluster.move_nodes(cluster.nodes_in(Role.DB), Role.APP)


class TestApproximationKnob:
    def test_knob_validation(self):
        with pytest.raises(ValueError):
            AnalyticBackend(approximation="magic")
        for mode in APPROXIMATIONS:
            AnalyticBackend(approximation=mode)

    def test_auto_thresholds(self):
        backend = AnalyticBackend()
        small = ClusterSpec.three_tier(2, 2, 2)
        wide = ClusterSpec.wide(8, 8, 2)
        assert backend.resolve_modes(small, 2000) == (False, False)
        assert backend.resolve_modes(small, 50_000) == (True, False)
        assert backend.resolve_modes(wide, 2000) == (False, True)
        assert backend.resolve_modes(wide, 1_000_000) == (True, True)

    def test_forced_modes(self):
        cluster = ClusterSpec.three_tier(1, 1, 1)
        cases = {
            "exact": (False, False),
            "fluid": (True, False),
            "hierarchical": (False, True),
            "fluid+hierarchical": (True, True),
        }
        for mode, expected in cases.items():
            backend = AnalyticBackend(approximation=mode)
            assert backend.resolve_modes(cluster, 100) == expected

    def test_exact_refuses_huge_population(self):
        backend = AnalyticBackend(approximation="exact")
        cluster = ClusterSpec.three_tier(1, 1, 1)
        with pytest.raises(ValueError, match="refuses population"):
            backend.resolve_modes(cluster, 1_000_000)
        # ... and the limit is adjustable for those who mean it.
        lenient = AnalyticBackend(
            approximation="exact", max_exact_population=10**9
        )
        lenient.resolve_modes(cluster, 1_000_000)

    def test_auto_matches_exact_below_thresholds(self):
        # Below both thresholds "auto" must reproduce the exact path bit
        # for bit (same solver, same cache keys).
        cluster = ClusterSpec.three_tier(2, 2, 2)
        scenario = _scenario(cluster)
        cfg = cluster.default_configuration()
        auto = AnalyticBackend(noise=NoiseModel(0.0, 0.0, 0.0))
        exact = AnalyticBackend(
            approximation="exact", noise=NoiseModel(0.0, 0.0, 0.0)
        )
        assert (
            auto.measure(scenario, cfg, seed=3).wips
            == exact.measure(scenario, cfg, seed=3).wips
        )

    def test_fluid_agrees_with_exact_at_moderate_n(self):
        cluster = ClusterSpec.three_tier(2, 2, 2)
        scenario = _scenario(cluster, population=2000)
        cfg = cluster.default_configuration()
        kwargs = {"noise": NoiseModel(0.0, 0.0, 0.0)}
        exact = AnalyticBackend(approximation="exact", **kwargs)
        fluid = AnalyticBackend(approximation="fluid", **kwargs)
        m_e = exact.measure(scenario, cfg, seed=0)
        m_f = fluid.measure(scenario, cfg, seed=0)
        assert m_f.wips == pytest.approx(m_e.wips, rel=5e-2)
        assert m_f.diagnostics["solver.fluid"] == 1.0
        assert m_e.diagnostics["solver.fluid"] == 0.0

    def test_mode_tag_separates_cached_solutions(self):
        # One backend, two forced modes over the same configuration: the
        # solution cache must not serve one mode's result to the other.
        cluster = ClusterSpec.three_tier(2, 2, 2)
        scenario = _scenario(cluster, population=2000)
        cfg = cluster.default_configuration()
        kwargs = {"noise": NoiseModel(0.0, 0.0, 0.0)}
        fluid_first = AnalyticBackend(approximation="fluid", **kwargs)
        w_fluid = fluid_first.measure(scenario, cfg, seed=0).wips
        exact = AnalyticBackend(approximation="exact", **kwargs)
        w_exact = exact.measure(scenario, cfg, seed=0).wips
        # Same numbers whether or not another mode warmed a cache first.
        mixed = AnalyticBackend(approximation="fluid", **kwargs)
        assert mixed.measure(scenario, cfg, seed=0).wips == w_fluid
        assert w_fluid != w_exact

    def test_wide_cluster_huge_population_is_fast(self):
        # The headline: a 100+-node cluster at N=10^6 solves through the
        # approximation stack (no per-node, per-customer work).
        cluster = ClusterSpec.wide(64, 48, 8)
        scenario = _scenario(cluster, population=1_000_000)
        backend = AnalyticBackend(noise=NoiseModel(0.0, 0.0, 0.0))
        m = backend.measure(
            scenario, cluster.default_configuration(), seed=0
        )
        assert m.wips > 0
        assert m.diagnostics["solver.fluid"] == 1.0
        assert m.diagnostics["solver.aggregated_nodes"] == cluster.num_nodes - 3
        # Every node still reports utilization (expansion ran).
        assert set(m.utilization) == {
            p.node_id for p in cluster.placements
        }


class TestScaleExperiment:
    @pytest.fixture(scope="class")
    def result(self):
        from repro.experiments import scale

        cfg = ExperimentConfig(
            iterations=10, baseline_iterations=4, jobs=1, engine="inline"
        )
        return scale.run(cfg, cluster=ClusterSpec.wide(8, 8, 4))

    def test_solver_modes_engaged(self, result):
        assert result.fluid == 1.0
        assert result.aggregated_nodes == 20 - 3

    def test_agreement_bands(self, result):
        assert result.agreement["exact"].relative_error == 0.0
        assert result.agreement["hierarchical"].relative_error < 1e-9
        assert result.agreement["fluid"].relative_error < 5e-2
        assert result.agreement["fluid+hierarchical"].relative_error < 5e-2

    def test_tables_render(self, result):
        text = str(result.to_table())
        assert "SCALE" in text and "fluid" in text
        assert "Rel. error" in str(result.agreement_table())

    def test_tuning_not_worse_than_baseline(self, result):
        assert result.tuned_wips >= result.baseline_wips * 0.95

    def test_des_validation_arm(self, result):
        assert result.des_population == 2000
        assert 0.9 <= result.des_over_exact_ratio <= 1.1
        assert "simulation (DES)" in str(result.agreement_table())
