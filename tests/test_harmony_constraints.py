"""Tests for parameter constraints and their repair projection."""

import numpy as np
import pytest

from repro.cluster.node import Role
from repro.cluster.params import constraints_for_role
from repro.cluster.topology import ClusterSpec
from repro.harmony.constraints import ConstraintSet, OrderingConstraint
from repro.harmony.parameter import Configuration, IntParameter, ParameterSpace
from repro.harmony.scaling import DuplicationScheme, PartitionScheme
from repro.harmony.simplex import NelderMeadSimplex
from repro.harmony.search import CoordinateDescent, RandomSearch, SimplexStrategy


def _space():
    return ParameterSpace(
        [
            IntParameter("low", 10, 0, 100),
            IntParameter("high", 50, 0, 100),
            IntParameter("other", 5, 0, 10),
        ]
    )


def _cs(gap=0):
    return ConstraintSet([OrderingConstraint("low", "high", min_gap=gap)])


class TestOrderingConstraint:
    def test_validation(self):
        with pytest.raises(ValueError):
            OrderingConstraint("a", "a")
        with pytest.raises(ValueError):
            OrderingConstraint("a", "b", min_gap=-1)

    def test_satisfied(self):
        c = OrderingConstraint("low", "high", min_gap=5)
        assert c.satisfied({"low": 10, "high": 15})
        assert not c.satisfied({"low": 10, "high": 14})

    def test_prefixed(self):
        c = OrderingConstraint("a", "b", 2).prefixed("n0.")
        assert c.lesser == "n0.a"
        assert c.greater == "n0.b"
        assert c.min_gap == 2

    def test_describe_mentions_values(self):
        c = OrderingConstraint("low", "high")
        msg = c.describe({"low": 9, "high": 3})
        assert "9" in msg and "3" in msg


class TestConstraintSet:
    def test_len_bool_iter(self):
        cs = _cs()
        assert len(cs) == 1
        assert bool(cs)
        assert not ConstraintSet()
        assert list(cs)[0].lesser == "low"

    def test_names(self):
        assert _cs().names() == {"low", "high"}

    def test_violations(self):
        cs = _cs()
        assert cs.violations({"low": 1, "high": 2}) == []
        assert len(cs.violations({"low": 9, "high": 2})) == 1

    def test_restrict_to(self):
        cs = ConstraintSet(
            [OrderingConstraint("a", "b"), OrderingConstraint("c", "d")]
        )
        restricted = cs.restrict_to({"a", "b", "c"})
        assert len(restricted) == 1
        assert restricted.constraints[0].lesser == "a"

    def test_merge(self):
        merged = _cs().merge(ConstraintSet([OrderingConstraint("x", "y")]))
        assert len(merged) == 2


class TestRepair:
    def test_noop_when_satisfied(self):
        space = _space()
        cfg = Configuration({"low": 10, "high": 50, "other": 5})
        assert _cs().repair(space, cfg) == cfg

    def test_raises_greater_first(self):
        space = _space()
        cfg = Configuration({"low": 60, "high": 50, "other": 5})
        repaired = _cs().repair(space, cfg)
        assert repaired["low"] == 60
        assert repaired["high"] == 60
        assert repaired["other"] == 5

    def test_lowers_lesser_at_bound(self):
        space = _space()
        cfg = Configuration({"low": 100, "high": 50, "other": 5})
        repaired = _cs(gap=10).repair(space, cfg)
        assert repaired["high"] == 100
        assert repaired["low"] == 90

    def test_respects_grid(self):
        space = ParameterSpace(
            [
                IntParameter("low", 10, 0, 100, step=10),
                IntParameter("high", 55, 5, 95, step=10),
            ]
        )
        cs = ConstraintSet([OrderingConstraint("low", "high", min_gap=1)])
        repaired = cs.repair(space, Configuration({"low": 60, "high": 55}))
        space.validate(repaired)
        assert cs.satisfied(repaired)

    def test_unsatisfiable_raises(self):
        space = ParameterSpace(
            [
                IntParameter("low", 90, 90, 100),
                IntParameter("high", 10, 0, 10),
            ]
        )
        cs = ConstraintSet([OrderingConstraint("low", "high")])
        with pytest.raises(ValueError, match="unsatisfiable"):
            cs.repair(space, space.default_configuration())

    def test_unknown_name_raises(self):
        cs = ConstraintSet([OrderingConstraint("nope", "high")])
        with pytest.raises(KeyError):
            cs.repair(_space(), Configuration({"low": 1, "high": 2, "other": 0}))

    def test_idempotent(self):
        space = _space()
        cs = _cs(gap=3)
        cfg = Configuration({"low": 80, "high": 20, "other": 1})
        once = cs.repair(space, cfg)
        assert cs.repair(space, once) == once


class TestSearchIntegration:
    def test_simplex_never_asks_infeasible(self):
        space = _space()
        cs = _cs(gap=1)
        simplex = NelderMeadSimplex(
            space, rng=np.random.default_rng(0), constraints=cs
        )
        rng = np.random.default_rng(1)
        for _ in range(60):
            cfg = simplex.ask()
            assert cs.satisfied(cfg), dict(cfg)
            simplex.tell(cfg, float(rng.normal()))

    def test_simplex_repairs_infeasible_start(self):
        space = _space()
        cs = _cs()
        start = Configuration({"low": 90, "high": 10, "other": 5})
        simplex = NelderMeadSimplex(space, start=start, constraints=cs)
        assert cs.satisfied(simplex.ask())

    def test_random_search_feasible(self):
        space = _space()
        cs = _cs(gap=2)
        s = RandomSearch(space, rng=np.random.default_rng(2), constraints=cs)
        for _ in range(40):
            cfg = s.ask()
            assert cs.satisfied(cfg)
            s.tell(cfg, 0.0)

    def test_coordinate_descent_feasible(self):
        space = _space()
        cs = _cs(gap=2)
        s = CoordinateDescent(space, constraints=cs, step_multiplier=30)
        rng = np.random.default_rng(3)
        for _ in range(40):
            cfg = s.ask()
            assert cs.satisfied(cfg)
            s.tell(cfg, float(rng.random()))

    def test_strategy_still_optimizes_under_constraints(self):
        space = _space()
        cs = _cs(gap=1)
        s = SimplexStrategy(
            space, rng=np.random.default_rng(4), constraints=cs
        )
        # Optimum wants low as HIGH as possible but below high.
        for _ in range(120):
            cfg = s.ask()
            s.tell(cfg, float(cfg["low"] + cfg["high"]))
        best = s.best[0]
        assert best["high"] >= 95
        assert best["low"] >= 80
        assert cs.satisfied(best)


class TestClusterConstraints:
    def test_role_constraints(self):
        assert len(constraints_for_role(Role.PROXY)) == 1
        assert len(constraints_for_role(Role.APP)) == 2
        assert len(constraints_for_role(Role.DB)) == 0

    def test_full_constraints_namespaced(self):
        cluster = ClusterSpec.three_tier(2, 1, 1)
        cs = cluster.full_constraints()
        # 2 proxies x 1 + 1 app x 2 = 4 constraints.
        assert len(cs) == 4
        assert "proxy1.cache_swap_low" in cs.names()
        assert "app0.minProcessors" in cs.names()

    def test_defaults_are_feasible(self):
        cluster = ClusterSpec.three_tier(2, 2, 2)
        assert cluster.full_constraints().satisfied(
            cluster.default_configuration()
        )

    def test_duplication_lifts_constraints_to_tier_level(self):
        cluster = ClusterSpec.three_tier(2, 2, 2)
        scheme = DuplicationScheme(
            cluster.full_space(), cluster.tiers(),
            constraints=cluster.full_constraints(),
        )
        group = scheme.groups[0]
        assert "proxy.cache_swap_low" in group.constraints.names()
        assert "app.minProcessors" in group.constraints.names()
        # One per tier-level pair, not per node.
        assert len(group.constraints) == 3

    def test_partitioning_restricts_constraints_per_line(self):
        cluster = ClusterSpec.three_tier(2, 2, 2)
        scheme = PartitionScheme(
            cluster.full_space(), cluster.work_lines(2),
            constraints=cluster.full_constraints(),
        )
        for group in scheme.groups:
            names = group.constraints.names()
            assert names <= set(group.space.names)
            assert len(group.constraints) == 3  # 1 proxy + 2 app per line

    def test_tuning_session_only_measures_feasible_configs(self):
        from repro.model.analytic import AnalyticBackend
        from repro.model.base import Scenario
        from repro.tpcw.interactions import SHOPPING_MIX
        from repro.tuning.session import ClusterTuningSession, make_scheme

        cluster = ClusterSpec.three_tier(1, 1, 1)
        scenario = Scenario(cluster=cluster, mix=SHOPPING_MIX, population=400)
        session = ClusterTuningSession(
            AnalyticBackend(), scenario,
            scheme=make_scheme(scenario, "default"), seed=5,
        )
        cs = cluster.full_constraints()
        session.run(40)
        for record in session.history:
            assert cs.satisfied(record.configuration)
