"""Tests for the periodic reconfiguration loop."""

import pytest

from repro.cluster.node import Role
from repro.cluster.topology import ClusterSpec
from repro.model.analytic import AnalyticBackend
from repro.model.base import Scenario
from repro.tpcw.interactions import BROWSING_MIX, ORDERING_MIX
from repro.tuning.reconfig_loop import ReconfigurationLoop
from repro.tuning.session import ClusterTuningSession, make_scheme


def _loop(cluster, mix, population, **kwargs):
    scenario = Scenario(cluster=cluster, mix=mix, population=population)
    session = ClusterTuningSession(
        AnalyticBackend(), scenario,
        scheme=make_scheme(scenario, "duplication"), seed=13,
    )
    return ReconfigurationLoop(session, **kwargs)


class TestValidation:
    def test_bad_arguments(self):
        cluster = ClusterSpec.three_tier(2, 2, 2)
        with pytest.raises(ValueError):
            _loop(cluster, BROWSING_MIX, 100, check_every=0)
        with pytest.raises(ValueError):
            _loop(cluster, BROWSING_MIX, 100, cooldown=-1)
        with pytest.raises(ValueError):
            _loop(cluster, BROWSING_MIX, 100, smoothing=0)
        loop = _loop(cluster, BROWSING_MIX, 100)
        with pytest.raises(ValueError):
            loop.run(-1)


class TestNoMoveWhenBalanced:
    def test_balanced_cluster_stays_put(self):
        loop = _loop(
            ClusterSpec.three_tier(2, 2, 2), BROWSING_MIX, 600,
            check_every=10,
        )
        loop.run(30)
        assert loop.moves == []
        assert loop.session.scenario.cluster.tier_size(Role.PROXY) == 2


class TestMovesWhenImbalanced:
    def test_moves_proxy_to_app_under_ordering(self):
        """The Figure 7(a) situation, discovered by the periodic loop."""
        loop = _loop(
            ClusterSpec.three_tier(4, 2, 2), ORDERING_MIX, 2000,
            check_every=10, drain_delay=2, cooldown=15,
        )
        loop.run(40)
        assert len(loop.moves) >= 1
        move = loop.moves[0]
        assert move.decision.from_role is Role.PROXY
        assert move.decision.to_role is Role.APP
        cluster = loop.session.scenario.cluster
        assert cluster.tier_size(Role.APP) >= 3

    def test_deferred_move_waits_for_drain(self):
        loop = _loop(
            ClusterSpec.three_tier(4, 2, 2), ORDERING_MIX, 2000,
            check_every=10, drain_delay=4, cooldown=50,
        )
        loop.run(40)
        assert loop.moves, "expected at least one move"
        move = loop.moves[0]
        if not move.decision.immediate:
            assert move.applied_at - move.decided_at >= 4

    def test_cooldown_limits_move_rate(self):
        loop = _loop(
            ClusterSpec.three_tier(4, 2, 2), ORDERING_MIX, 2000,
            check_every=5, drain_delay=0, cooldown=100,
        )
        loop.run(60)
        assert len(loop.moves) <= 1

    def test_max_moves_cap(self):
        loop = _loop(
            ClusterSpec.three_tier(4, 2, 2), ORDERING_MIX, 2000,
            check_every=5, drain_delay=0, cooldown=0, max_moves=1,
        )
        loop.run(60)
        assert len(loop.moves) <= 1

    def test_throughput_improves_after_move(self):
        loop = _loop(
            ClusterSpec.three_tier(4, 2, 2), ORDERING_MIX, 2000,
            check_every=10, drain_delay=0, cooldown=100,
        )
        loop.run(50)
        assert loop.moves, "expected a move"
        applied = loop.moves[0].applied_at
        perf = loop.session.history.performances()
        before = perf[max(0, applied - 8) : applied].mean()
        after = perf[applied + 3 :].mean()
        assert after > before * 1.15
