"""Unit tests for the runtime concurrency sanitizer (RPL151–RPL154).

Every deliberate violation is injected inside ``sanitizer.scope()``,
which force-activates the sanitizer with isolated state — so these
tests run identically with and without ``REPRO_SANITIZE=1`` in the
environment, and never contaminate the session-wide findings the
conftest gate checks at exit.

The storms are deterministic: thread overlap is forced with barriers
and lock-handoff (never sleeps), so a detection here is a guarantee,
not a probability.
"""

from __future__ import annotations

import threading

from repro.lint import sanitizer as san
from repro.parallel.store import SharedMeasurementCache, SharedStore


def rules_of(captured):
    return [f.rule for f in captured]


# ----------------------------------------------------------------------
# Activation and wrapping
# ----------------------------------------------------------------------
def test_wrap_lock_is_passthrough_when_inactive(monkeypatch):
    monkeypatch.delenv("REPRO_SANITIZE", raising=False)
    inner = threading.Lock()
    assert not san.active()
    assert san.wrap_lock("x", inner) is inner
    # The hooks are no-ops on raw locks and when inactive.
    san.expect_held(inner, "whatever")
    san.check_coherent("kind", "key", 1, 2)
    assert san.findings() == []


def test_env_zero_means_inactive(monkeypatch):
    monkeypatch.setenv("REPRO_SANITIZE", "0")
    assert not san.active()
    monkeypatch.setenv("REPRO_SANITIZE", "1")
    assert san.active()


def test_wrap_lock_tracks_when_active():
    with san.scope() as captured:
        lock = san.wrap_lock("x", threading.Lock())
        assert isinstance(lock, san.TrackedLock)
        with lock:
            assert "x" in san.held_locks()
        assert "x" not in san.held_locks()
    assert captured == []


def test_scope_isolates_injected_findings():
    with san.scope() as captured:
        san.check_coherent("kind", "key", 1, 2)
    assert rules_of(captured) == ["RPL153"]
    # Nothing leaked into the process-wide list.
    assert all(f.rule != "RPL153" for f in san.findings())


# ----------------------------------------------------------------------
# RPL151 — lock-order inversion
# ----------------------------------------------------------------------
def _run_in_thread(fn):
    error = []

    def target():
        try:
            fn()
        except BaseException as exc:  # pragma: no cover - surfaced below
            error.append(exc)

    thread = threading.Thread(target=target)
    thread.start()
    thread.join(timeout=30)
    assert not thread.is_alive(), "worker thread hung"
    assert not error, f"worker thread raised {error[0]!r}"


def test_lock_order_inversion_is_detected():
    with san.scope() as captured:
        a = san.TrackedLock("lock.a", threading.Lock())
        b = san.TrackedLock("lock.b", threading.Lock())

        def forward():
            with a:
                with b:
                    pass

        def backward():
            with b:
                with a:
                    pass

        _run_in_thread(forward)
        _run_in_thread(backward)
    assert "RPL151" in rules_of(captured)
    message = next(f for f in captured if f.rule == "RPL151").message
    assert "lock.a" in message and "lock.b" in message
    assert all(f.phase == "runtime" for f in captured)


def test_consistent_lock_order_is_clean():
    with san.scope() as captured:
        a = san.TrackedLock("lock.a", threading.Lock())
        b = san.TrackedLock("lock.b", threading.Lock())

        def forward():
            with a:
                with b:
                    pass

        _run_in_thread(forward)
        _run_in_thread(forward)
    assert captured == []


def test_reentrant_rlock_does_not_self_invert():
    with san.scope() as captured:
        lock = san.TrackedLock("lock.r", threading.RLock())
        with lock:
            with lock:
                assert "lock.r" in san.held_locks()
        assert "lock.r" not in san.held_locks()
    assert captured == []


# ----------------------------------------------------------------------
# RPL152 — unsynchronized mutation
# ----------------------------------------------------------------------
def test_expect_held_reports_unheld_lock():
    with san.scope() as captured:
        lock = san.TrackedLock("guard", threading.Lock())
        san.expect_held(lock, "L1 insert")
        with lock:
            san.expect_held(lock, "L1 insert")  # held: clean
    assert rules_of(captured) == ["RPL152"]
    assert "guard" in captured[0].message


def test_monitored_region_storm_detects_unsynchronized_writers():
    workers = 4
    barrier = threading.Barrier(workers, timeout=30)
    with san.scope() as captured:

        def storm():
            with san.monitored_region("shared-table", op="write"):
                barrier.wait()  # all workers provably inside at once

        threads = [threading.Thread(target=storm) for _ in range(workers)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert not any(t.is_alive() for t in threads)
    assert "RPL152" in rules_of(captured)


def test_monitored_region_readers_only_is_clean():
    workers = 4
    barrier = threading.Barrier(workers, timeout=30)
    with san.scope() as captured:

        def storm():
            with san.monitored_region("shared-table", op="read"):
                barrier.wait()

        threads = [threading.Thread(target=storm) for _ in range(workers)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
    assert captured == []


# ----------------------------------------------------------------------
# RPL153 — cache coherence
# ----------------------------------------------------------------------
def test_check_coherent_flags_divergence_only():
    with san.scope() as captured:
        san.check_coherent("memo", ("k",), 1, 1)  # identical: clean
        san.check_coherent("memo", ("k",), None, 1)  # first write: clean
        san.check_coherent("memo", ("k",), 1, 2)  # divergent
    assert rules_of(captured) == ["RPL153"]
    assert "memo" in captured[0].message


def test_shared_store_put_divergence_reports():
    with san.scope() as captured:
        store = SharedStore()
        store.put(("sol", "k"), 41)
        store.put(("sol", "k"), 41)  # idempotent republish: clean
        store.put(("sol", "k"), 42)  # same key, new value
    assert rules_of(captured) == ["RPL153"]


# ----------------------------------------------------------------------
# RPL154 — fused-vs-solo fingerprint
# ----------------------------------------------------------------------
def _double(tasks, outer_budget):
    return [t * 2 for t in tasks]


def test_check_fused_clean_when_slices_match():
    with san.scope() as captured:
        san.check_fused(_double, [([1, 2], [2, 4]), ([3], [6])], None)
    assert captured == []


def test_check_fused_reports_divergent_group():
    with san.scope() as captured:
        san.check_fused(_double, [([1, 2], [2, 4]), ([3], [7])], None)
    assert rules_of(captured) == ["RPL154"]
    assert "group 1" in captured[0].message


def test_check_fused_reports_solo_failure():
    def boom(tasks, outer_budget):
        raise ValueError("solver exploded")

    with san.scope() as captured:
        san.check_fused(boom, [([1], [1])], None)
    assert rules_of(captured) == ["RPL154"]
    assert "raised" in captured[0].message


# ----------------------------------------------------------------------
# TrackedLock as a Condition lock
# ----------------------------------------------------------------------
def test_condition_wait_releases_and_reacquires_tracked_lock():
    with san.scope() as captured:
        lock = san.TrackedLock("cond.lock", threading.RLock())
        cond = threading.Condition(lock)
        helper_held = []

        def notifier():
            # Blocks until the main thread's wait() releases the lock —
            # a deterministic handoff, no sleeps involved.
            with cond:
                helper_held.append("cond.lock" in san.held_locks())
                cond.notify()

        with cond:
            assert "cond.lock" in san.held_locks()
            thread = threading.Thread(target=notifier)
            thread.start()
            notified = cond.wait(timeout=30)
            # Reacquired on wakeup: the held stack reflects it again.
            assert "cond.lock" in san.held_locks()
        thread.join(timeout=30)
        assert notified
        assert helper_held == [True]
    assert captured == []


# ----------------------------------------------------------------------
# Shared-cache integration hooks
# ----------------------------------------------------------------------
def test_measurement_cache_insert_requires_lock():
    with san.scope() as captured:
        cache = SharedMeasurementCache(SharedStore())
        cache._insert(("k",), object())  # bypasses the lock: violation
        with cache._lock:
            cache._insert(("k2",), object())  # disciplined path: clean
    assert rules_of(captured) == ["RPL152"]


def test_clean_store_traffic_has_no_findings():
    with san.scope() as captured:
        store = SharedStore()
        for i in range(8):
            store.put(("sol", i), i * i)
        for i in range(8):
            assert store.get(("sol", i)) == i * i
        for i in range(8):
            store.put(("sol", i), i * i)  # idempotent republish
    assert captured == []


# ----------------------------------------------------------------------
# Rendezvous integration: RPL154 on real fused gang batches
# ----------------------------------------------------------------------
def _mini_gang(rendezvous, work):
    """Run ``work`` callables as registered gang member threads."""
    out: dict = {}

    def drive(i, fn):
        try:
            out[i] = fn()
        finally:
            rendezvous.leave()

    threads = [
        threading.Thread(target=drive, args=(i, fn), daemon=True)
        for i, fn in enumerate(work)
    ]
    for thread in threads:
        rendezvous.register(thread)
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=30)
    assert not any(t.is_alive() for t in threads)
    return out


def test_rendezvous_fused_check_clean_for_deterministic_solver():
    from repro.parallel.vector import SolveRendezvous

    with san.scope() as captured:
        rv = SolveRendezvous(
            lambda tasks, budget: [("solved", task) for task in tasks]
        )
        out = _mini_gang(
            rv, [lambda k=k: rv.solve([("task", k)]) for k in range(3)]
        )
    assert out == {k: [("solved", ("task", k))] for k in range(3)}
    assert captured == []


def test_rendezvous_fused_check_catches_stateful_solver():
    from repro.parallel.vector import SolveRendezvous

    ticks = iter(range(100))

    def stateful(tasks, budget):
        # Result depends on call order — exactly the kind of hidden
        # state that breaks the fused/solo bit-identity contract.
        tick = next(ticks)
        return [("solved", task, tick) for task in tasks]

    with san.scope() as captured:
        rv = SolveRendezvous(stateful)
        _mini_gang(rv, [lambda k=k: rv.solve([("task", k)]) for k in range(2)])
    assert "RPL154" in rules_of(captured)


# ----------------------------------------------------------------------
# Finding plumbing
# ----------------------------------------------------------------------
def test_take_findings_drains_and_absorb_dedups():
    with san.scope() as captured:
        san.check_coherent("memo", ("k",), 1, 2)
        shipped = san.take_findings()
        assert rules_of(shipped) == ["RPL153"]
        assert san.findings() == []
        san.absorb(shipped)
        san.absorb(shipped)  # duplicate delivery collapses
        assert len(san.findings()) == 1
    assert rules_of(captured) == ["RPL153"]


def test_runtime_findings_carry_phase_in_schema():
    with san.scope() as captured:
        san.check_coherent("memo", ("k",), 1, 2)
    payload = captured[0].to_dict()
    assert payload["phase"] == "runtime"
    assert payload["rule"] in san.RUNTIME_RULES
