"""Tests for the discrete-event backend, including cross-validation."""

import pytest

from repro.cluster.topology import ClusterSpec
from repro.des.backend import SimulationBackend
from repro.model.analytic import AnalyticBackend
from repro.model.base import Scenario
from repro.model.noise import NoiseModel
from repro.tpcw.interactions import BROWSING_MIX, ORDERING_MIX, SHOPPING_MIX
from repro.tuning.iteration import IterationSpec


@pytest.fixture(scope="module")
def fast_des():
    """A short-window DES for tests (6s warm-up, 60s measurement)."""
    return SimulationBackend(time_scale=0.06)


@pytest.fixture(scope="module")
def quiet_analytic():
    return AnalyticBackend(noise=NoiseModel(0.0, 0.0, 0.0))


@pytest.fixture(scope="module")
def cluster():
    return ClusterSpec.three_tier(1, 1, 1)


class TestBasics:
    def test_time_scale_validation(self):
        with pytest.raises(ValueError):
            SimulationBackend(time_scale=0.0)

    def test_produces_measurement(self, fast_des, cluster):
        sc = Scenario(cluster=cluster, mix=SHOPPING_MIX, population=200)
        m = fast_des.measure(sc, cluster.default_configuration(), seed=1)
        assert m.wips > 0
        assert m.response_time > 0
        assert set(m.utilization) == set(cluster.node_ids)

    def test_deterministic_per_seed(self, fast_des, cluster):
        sc = Scenario(cluster=cluster, mix=SHOPPING_MIX, population=100)
        cfg = cluster.default_configuration()
        a = fast_des.measure(sc, cfg, seed=9)
        b = fast_des.measure(sc, cfg, seed=9)
        assert a.wips == b.wips
        assert a.error_rate == b.error_rate

    def test_seed_changes_outcome(self, fast_des, cluster):
        sc = Scenario(cluster=cluster, mix=SHOPPING_MIX, population=100)
        cfg = cluster.default_configuration()
        assert fast_des.measure(sc, cfg, seed=1).wips != fast_des.measure(
            sc, cfg, seed=2
        ).wips

    def test_unsaturated_wips_tracks_population(self, fast_des, cluster):
        cfg = cluster.default_configuration()
        w100 = fast_des.measure(
            Scenario(cluster=cluster, mix=BROWSING_MIX, population=100),
            cfg, seed=3,
        ).wips
        w200 = fast_des.measure(
            Scenario(cluster=cluster, mix=BROWSING_MIX, population=200),
            cfg, seed=3,
        ).wips
        assert w200 == pytest.approx(2 * w100, rel=0.15)


class TestCrossValidation:
    """The headline substrate check: DES and analytic backends must agree."""

    @pytest.mark.parametrize("mix", [BROWSING_MIX, SHOPPING_MIX, ORDERING_MIX])
    def test_default_config_agreement(self, fast_des, quiet_analytic, cluster, mix):
        sc = Scenario(cluster=cluster, mix=mix, population=500)
        cfg = cluster.default_configuration()
        w_des = fast_des.measure(sc, cfg, seed=4).wips
        w_ana = quiet_analytic.measure(sc, cfg, seed=4).wips
        assert w_des == pytest.approx(w_ana, rel=0.10)

    def test_utilization_agreement(self, fast_des, quiet_analytic, cluster):
        sc = Scenario(cluster=cluster, mix=ORDERING_MIX, population=500)
        cfg = cluster.default_configuration()
        m_des = fast_des.measure(sc, cfg, seed=5)
        m_ana = quiet_analytic.measure(sc, cfg, seed=5)
        for node in cluster.node_ids:
            assert m_des.utilization[node].cpu == pytest.approx(
                m_ana.utilization[node].cpu, abs=0.12
            )

    def test_tuning_direction_agreement(self, fast_des, quiet_analytic, cluster):
        """Both backends must agree that cache tuning helps browsing."""
        sc = Scenario(cluster=cluster, mix=BROWSING_MIX, population=700)
        default = cluster.default_configuration()
        tuned = default.replace(**{
            "proxy0.cache_mem": 192,
            "proxy0.maximum_object_size_in_memory": 1024,
        })
        for backend in (fast_des, quiet_analytic):
            w_d = backend.measure(sc, default, seed=6).wips
            w_t = backend.measure(sc, tuned, seed=6).wips
            assert w_t > w_d


class TestPoolBehaviour:
    def test_starved_thread_pool_rejects(self, cluster):
        des = SimulationBackend(time_scale=0.04)
        sc = Scenario(cluster=cluster, mix=ORDERING_MIX, population=600)
        starved = cluster.default_configuration().replace(**{
            "app0.maxProcessors": 5,
            "app0.AJPmaxProcessors": 5,
            "app0.acceptCount": 5,
            "app0.AJPacceptCount": 5,
        })
        m = des.measure(sc, starved, seed=7)
        assert m.error_rate > 0.0
        assert m.diagnostics["app0.http.rejected"] > 0

    def test_ample_pools_no_rejections(self, fast_des, cluster):
        sc = Scenario(cluster=cluster, mix=SHOPPING_MIX, population=200)
        roomy = cluster.default_configuration().replace(**{
            "app0.maxProcessors": 256,
            "app0.AJPmaxProcessors": 256,
            "app0.acceptCount": 1024,
            "app0.AJPacceptCount": 1024,
        })
        m = fast_des.measure(sc, roomy, seed=8)
        assert m.error_rate == 0.0


class TestWorkLines:
    def test_per_line_wips(self, cluster):
        des = SimulationBackend(time_scale=0.04)
        big = ClusterSpec.three_tier(2, 2, 2)
        lines = {k: tuple(v) for k, v in big.work_lines(2).items()}
        sc = Scenario(
            cluster=big, mix=SHOPPING_MIX, population=300, work_lines=lines
        )
        m = des.measure(sc, big.default_configuration(), seed=9)
        assert set(m.per_line_wips) == {"line0", "line1"}
        assert sum(m.per_line_wips.values()) == pytest.approx(m.wips, rel=1e-6)
        # Roughly even split of the population.
        lo, hi = sorted(m.per_line_wips.values())
        assert hi < 2.0 * lo


class TestIterationSpecIntegration:
    def test_custom_spec_durations(self, cluster):
        des = SimulationBackend(
            iteration_spec=IterationSpec(warmup=10, measure=50, cooldown=0),
            time_scale=1.0,
        )
        assert des.spec.measure == 50
        sc = Scenario(cluster=cluster, mix=SHOPPING_MIX, population=50)
        m = des.measure(sc, cluster.default_configuration(), seed=1)
        assert m.wips > 0


class TestNavigationMode:
    def test_navigation_sessions_give_same_throughput(self, cluster):
        """Correlated navigation has the same stationary mix, so WIPS must
        match i.i.d. sampling within sampling noise."""
        iid = SimulationBackend(time_scale=0.05, navigation=False)
        nav = SimulationBackend(time_scale=0.05, navigation=True)
        sc = Scenario(cluster=cluster, mix=SHOPPING_MIX, population=300)
        cfg = cluster.default_configuration()
        w_iid = iid.measure(sc, cfg, seed=12).wips
        w_nav = nav.measure(sc, cfg, seed=12).wips
        assert w_nav == pytest.approx(w_iid, rel=0.08)

    def test_navigation_category_split_matches_mix(self, cluster):
        nav = SimulationBackend(time_scale=0.05, navigation=True)
        sc = Scenario(cluster=cluster, mix=BROWSING_MIX, population=300)
        m = nav.measure(sc, cluster.default_configuration(), seed=13)
        share = m.diagnostics["wips_browse"] / m.wips
        assert share == pytest.approx(0.95, abs=0.04)


class TestGoldenRegression:
    """Exact golden values captured before the ``__slots__``/heap micro-perf
    pass over the simulation kernel — the DES must keep producing the same
    event sequences bit for bit (same RNG draws in the same order), so any
    drift here means a behavioural change snuck into a "pure" optimization.
    """

    GOLDENS = [
        # (mix, population, seed) -> (wips, raw_wips, error_rate, response_time)
        (SHOPPING_MIX, 60, 123, (8.6, 8.6, 0.0, 0.0470117644722249)),
        (ORDERING_MIX, 40, 7, (5.35, 5.35, 0.0, 0.04753151824332001)),
    ]

    @pytest.mark.parametrize(
        "mix,population,seed,expected",
        GOLDENS,
        ids=[f"{m.name}-{p}-{s}" for m, p, s, _ in GOLDENS],
    )
    def test_exact_goldens(self, mix, population, seed, expected):
        des = SimulationBackend(time_scale=0.02)
        cluster = ClusterSpec.three_tier(1, 1, 1)
        sc = Scenario(cluster=cluster, mix=mix, population=population)
        m = des.measure(sc, cluster.default_configuration(), seed=seed)
        assert (m.wips, m.raw_wips, m.error_rate, m.response_time) == expected
