"""Tests for repro.util.stats."""

import math

import numpy as np
import pytest

from repro.util.stats import (
    RunningStats,
    TimeWeightedStats,
    confidence_interval,
    percentile,
)


class TestRunningStats:
    def test_empty(self):
        s = RunningStats()
        assert s.count == 0
        assert s.mean == 0.0
        assert s.variance == 0.0
        assert s.stddev == 0.0

    def test_single_value(self):
        s = RunningStats([5.0])
        assert s.mean == 5.0
        assert s.variance == 0.0
        assert s.minimum == 5.0
        assert s.maximum == 5.0

    def test_matches_numpy(self):
        data = [1.5, -2.0, 3.25, 7.0, 0.0, 4.5]
        s = RunningStats(data)
        assert s.mean == pytest.approx(np.mean(data))
        assert s.variance == pytest.approx(np.var(data, ddof=1))
        assert s.stddev == pytest.approx(np.std(data, ddof=1))
        assert s.minimum == min(data)
        assert s.maximum == max(data)

    def test_numerically_stable_with_offset(self):
        # Welford should not cancel catastrophically at a large offset.
        base = 1e8
        data = [base + x for x in (0.1, 0.2, 0.3, 0.4)]
        s = RunningStats(data)
        assert s.variance == pytest.approx(
            np.var([0.1, 0.2, 0.3, 0.4], ddof=1), rel=1e-6
        )

    def test_merge_equals_combined(self):
        a_data = [1.0, 2.0, 3.0]
        b_data = [10.0, 20.0]
        merged = RunningStats(a_data).merge(RunningStats(b_data))
        combined = RunningStats(a_data + b_data)
        assert merged.count == combined.count
        assert merged.mean == pytest.approx(combined.mean)
        assert merged.variance == pytest.approx(combined.variance)
        assert merged.minimum == combined.minimum
        assert merged.maximum == combined.maximum

    def test_merge_with_empty(self):
        a = RunningStats([1.0, 2.0])
        merged = a.merge(RunningStats())
        assert merged.mean == pytest.approx(1.5)
        merged2 = RunningStats().merge(a)
        assert merged2.count == 2


class TestTimeWeightedStats:
    def test_constant_signal(self):
        t = TimeWeightedStats(0.0, 3.0)
        assert t.mean(10.0) == pytest.approx(3.0)

    def test_step_signal(self):
        t = TimeWeightedStats(0.0, 0.0)
        t.update(5.0, 1.0)  # 0 for 5s, then 1 for 5s
        assert t.mean(10.0) == pytest.approx(0.5)

    def test_multiple_steps(self):
        t = TimeWeightedStats(0.0, 2.0)
        t.update(1.0, 4.0)
        t.update(3.0, 0.0)
        # 2*1 + 4*2 + 0*1 over 4s = 10/4
        assert t.mean(4.0) == pytest.approx(2.5)

    def test_maximum_tracked(self):
        t = TimeWeightedStats(0.0, 1.0)
        t.update(1.0, 7.0)
        t.update(2.0, 3.0)
        assert t.maximum == 7.0

    def test_time_going_backwards_rejected(self):
        t = TimeWeightedStats(0.0, 0.0)
        t.update(5.0, 1.0)
        with pytest.raises(ValueError):
            t.update(4.0, 2.0)

    def test_mean_before_last_update_rejected(self):
        t = TimeWeightedStats(0.0, 0.0)
        t.update(5.0, 1.0)
        with pytest.raises(ValueError):
            t.mean(4.0)

    def test_reset(self):
        t = TimeWeightedStats(0.0, 2.0)
        t.update(5.0, 10.0)
        t.reset(5.0)
        assert t.mean(10.0) == pytest.approx(10.0)
        assert t.current == 10.0

    def test_zero_span_returns_current(self):
        t = TimeWeightedStats(3.0, 4.5)
        assert t.mean(3.0) == 4.5


class TestPercentile:
    def test_median(self):
        assert percentile([3.0, 1.0, 2.0], 50) == 2.0

    def test_interpolation(self):
        assert percentile([0.0, 10.0], 25) == pytest.approx(2.5)

    def test_extremes(self):
        data = [5.0, 1.0, 9.0]
        assert percentile(data, 0) == 1.0
        assert percentile(data, 100) == 9.0

    def test_single_element(self):
        assert percentile([4.2], 73) == 4.2

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            percentile([], 50)

    def test_out_of_range_q_rejected(self):
        with pytest.raises(ValueError):
            percentile([1.0], 101)


class TestConfidenceInterval:
    def test_collapses_for_small_samples(self):
        s = RunningStats([5.0])
        assert confidence_interval(s) == (5.0, 5.0)

    def test_contains_mean(self):
        s = RunningStats([1.0, 2.0, 3.0, 4.0])
        low, high = confidence_interval(s)
        assert low < s.mean < high

    def test_width_shrinks_with_samples(self):
        small = RunningStats([1.0, 3.0] * 5)
        large = RunningStats([1.0, 3.0] * 50)
        w_small = confidence_interval(small)[1] - confidence_interval(small)[0]
        w_large = confidence_interval(large)[1] - confidence_interval(large)[0]
        assert w_large < w_small
