"""Tests for the approximate MVA solver."""

import pytest

from repro.model.mva import MvaResult, Station, solve_mva


def _exact_mva_single_server(demands, population, think):
    """Exact MVA recursion for single-server stations (reference)."""
    k = len(demands)
    q = [0.0] * k
    x = 0.0
    for n in range(1, population + 1):
        r = [d * (1 + qk) for d, qk in zip(demands, q)]
        x = n / (think + sum(r))
        q = [x * rk for rk in r]
    return x


class TestValidation:
    def test_bad_population(self):
        with pytest.raises(ValueError):
            solve_mva([Station("s", 0.1)], 0, 1.0)

    def test_negative_delay(self):
        with pytest.raises(ValueError):
            solve_mva([Station("s", 0.1)], 1, -1.0)

    def test_station_validation(self):
        with pytest.raises(ValueError):
            Station("s", -0.1)
        with pytest.raises(ValueError):
            Station("s", 0.1, servers=0)


class TestNoStations:
    def test_pure_delay(self):
        result = solve_mva([], 10, 2.0)
        assert result.throughput == pytest.approx(5.0)


class TestSingleServer:
    def test_close_to_exact_mva(self):
        demands = [0.02, 0.05, 0.01]
        for n in (1, 5, 20, 100):
            exact = _exact_mva_single_server(demands, n, 1.0)
            approx = solve_mva(
                [Station(f"s{i}", d) for i, d in enumerate(demands)], n, 1.0
            ).throughput
            assert approx == pytest.approx(exact, rel=0.05)

    def test_single_customer_no_queueing(self):
        # With N=1 response time is the bare demand.
        result = solve_mva([Station("s", 0.5)], 1, 1.0)
        assert result.response_time == pytest.approx(0.5, rel=1e-3)
        assert result.throughput == pytest.approx(1 / 1.5, rel=1e-3)

    def test_saturation_at_bottleneck(self):
        # X is capped at 1/D_max for large N.
        result = solve_mva([Station("fast", 0.01), Station("slow", 0.1)], 500, 1.0)
        assert result.throughput == pytest.approx(10.0, rel=0.02)
        assert result.bottleneck() == "slow"

    def test_utilization_formula(self):
        result = solve_mva([Station("s", 0.05)], 10, 1.0)
        assert result.utilization["s"] == pytest.approx(
            min(result.throughput * 0.05, 1.0), rel=1e-6
        )

    def test_queue_lengths_sum_close_to_population(self):
        stations = [Station("a", 0.1), Station("b", 0.05)]
        n = 50
        result = solve_mva(stations, n, 1.0)
        in_think = result.throughput * 1.0
        total = sum(result.queue.values()) + in_think
        assert total == pytest.approx(n, rel=0.1)


class TestMultiServer:
    def test_two_servers_double_capacity(self):
        single = solve_mva([Station("s", 0.1, servers=1)], 400, 1.0)
        double = solve_mva([Station("s", 0.1, servers=2)], 400, 1.0)
        assert double.throughput == pytest.approx(2 * single.throughput, rel=0.05)

    def test_multi_server_low_load_is_delay_like(self):
        # At negligible load a c-server station adds ~D to response time.
        result = solve_mva([Station("s", 0.1, servers=8)], 1, 10.0)
        assert result.response_time == pytest.approx(0.1, rel=0.05)

    def test_utilization_splits_over_servers(self):
        result = solve_mva([Station("s", 0.1, servers=4)], 200, 1.0)
        assert result.utilization["s"] <= 1.0


class TestExtraDelay:
    def test_extra_delay_reduces_throughput(self):
        base = solve_mva([Station("s", 0.01)], 50, 1.0)
        delayed = solve_mva([Station("s", 0.01)], 50, 1.0, extra_delay=1.0)
        assert delayed.throughput < base.throughput

    def test_unsaturated_throughput_matches_littles_law(self):
        result = solve_mva([Station("s", 0.001)], 10, 1.0, extra_delay=0.5)
        assert result.throughput == pytest.approx(10 / 1.501, rel=0.01)


class TestDeterminism:
    def test_same_inputs_same_outputs(self):
        stations = [Station("a", 0.03, 2), Station("b", 0.07)]
        r1 = solve_mva(stations, 77, 3.0)
        r2 = solve_mva(stations, 77, 3.0)
        assert r1.throughput == r2.throughput
        assert r1.queue == r2.queue


class TestExactMva:
    def test_matches_reference_recursion(self):
        from repro.model.mva import solve_mva_exact

        demands = [0.02, 0.05, 0.01]
        stations = [Station(f"s{i}", d) for i, d in enumerate(demands)]
        for n in (1, 5, 50):
            exact = solve_mva_exact(stations, n, 1.0)
            reference = _exact_mva_single_server(demands, n, 1.0)
            assert exact.throughput == pytest.approx(reference, rel=1e-12)

    def test_rejects_multi_server(self):
        from repro.model.mva import solve_mva_exact

        with pytest.raises(ValueError, match="single-server"):
            solve_mva_exact([Station("s", 0.1, servers=2)], 10, 1.0)

    def test_schweitzer_close_to_exact_across_loads(self):
        """The approximation the whole harness rests on: within a few
        percent of exact MVA from light to heavy load."""
        from repro.model.mva import solve_mva_exact

        stations = [Station("a", 0.04), Station("b", 0.015), Station("c", 0.08)]
        for n in (2, 10, 40, 150, 600):
            exact = solve_mva_exact(stations, n, 2.0).throughput
            approx = solve_mva(stations, n, 2.0).throughput
            assert approx == pytest.approx(exact, rel=0.05), n

    def test_exact_queue_lengths_conserve_population(self):
        from repro.model.mva import solve_mva_exact

        stations = [Station("a", 0.05), Station("b", 0.02)]
        n = 30
        result = solve_mva_exact(stations, n, 1.0)
        total = sum(result.queue.values()) + result.throughput * 1.0
        assert total == pytest.approx(n, rel=1e-9)
