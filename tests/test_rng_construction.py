"""Belt-and-braces companion to lint rule RPL001.

The bit-identical replay guarantee rests on every random stream being
derived from the experiment seed via ``repro.util.rng``.  This test
walks the whole ``src/`` tree with :mod:`ast` and asserts that
``util/rng.py`` is the *only* module constructing numpy generators —
``default_rng``, ``Generator(...)`` or legacy ``RandomState`` — so a
stray construction site fails the suite even if the linter is bypassed
or the call is hidden behind a ``# repro: noqa``.
"""

from __future__ import annotations

import ast
from pathlib import Path

from repro.lint.core import ImportMap

SRC = Path(__file__).parents[1] / "src"

#: Dotted call targets that create (or reseed) a numpy RNG.
CONSTRUCTORS = frozenset(
    {
        "numpy.random.default_rng",
        "numpy.random.Generator",
        "numpy.random.RandomState",
        "numpy.random.seed",
    }
)

ALLOWED = "repro/util/rng.py"


def construction_sites() -> list[str]:
    sites = []
    for path in sorted(SRC.rglob("*.py")):
        tree = ast.parse(path.read_text(), filename=str(path))
        imports = ImportMap()
        imports.visit(tree)
        for node in ast.walk(tree):
            if isinstance(node, ast.Call):
                qual = imports.resolve(node.func)
                if qual in CONSTRUCTORS:
                    rel = path.relative_to(SRC).as_posix()
                    sites.append(f"{rel}:{node.lineno}:{qual}")
    return sites


def test_spawn_rng_is_the_only_generator_construction_site():
    sites = construction_sites()
    assert sites, "expected util/rng.py to construct generators"
    stray = [s for s in sites if not s.startswith(ALLOWED)]
    assert not stray, (
        "numpy RNG constructed outside repro.util.rng "
        f"(use spawn_rng/derive_seed): {stray}"
    )


def test_stdlib_random_module_is_never_imported():
    for path in sorted(SRC.rglob("*.py")):
        tree = ast.parse(path.read_text(), filename=str(path))
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                names = [alias.name for alias in node.names]
            elif isinstance(node, ast.ImportFrom) and not node.level:
                names = [node.module or ""]
            else:
                continue
            assert "random" not in names, (
                f"{path}: stdlib random imported; use repro.util.rng"
            )
