"""Golden-measurement matrix for the DES byte-identity gate.

The cases below pin the discrete-event backend's exact output across a
scenario × seed × time_scale matrix.  The fixture file
(``tests/fixtures/des_golden.json``) was generated from the *pre-fast-path*
seed backend, so any kernel or RNG optimization that changes a single
event ordering or random draw shows up as a byte-level mismatch.

Floats are stored as ``float.hex()`` strings: JSON round-trips of decimal
reprs can lose the last bit, and "byte-identical" means exactly that.

Regenerate (only when a deliberate behaviour change is being made, with
the old kernel via ``REPRO_DES_LEGACY=1`` as the reference)::

    PYTHONPATH=src python -m tests.des_golden_cases

"""

from __future__ import annotations

import json
import pathlib

from repro.cluster.topology import ClusterSpec
from repro.model.base import Measurement, Scenario
from repro.tpcw.interactions import BROWSING_MIX, ORDERING_MIX, SHOPPING_MIX

__all__ = [
    "CASES",
    "SEEDS",
    "TIME_SCALES",
    "FIXTURE_PATH",
    "build_case",
    "measurement_to_jsonable",
    "generate_fixture",
]

FIXTURE_PATH = pathlib.Path(__file__).parent / "fixtures" / "des_golden.json"

#: Seeds and time scales of the matrix (3 scenarios x 3 seeds x 2 scales
#: is the issue's floor; we pin four scenarios).
SEEDS = (3, 11, 29)
TIME_SCALES = (0.02, 0.05)


def _shopping_small():
    cluster = ClusterSpec.three_tier(1, 1, 1)
    scenario = Scenario(cluster=cluster, mix=SHOPPING_MIX, population=120)
    return scenario, cluster.default_configuration(), {}


def _browsing_nav():
    cluster = ClusterSpec.three_tier(1, 1, 1)
    scenario = Scenario(cluster=cluster, mix=BROWSING_MIX, population=80)
    return scenario, cluster.default_configuration(), {"navigation": True}


def _ordering_lines():
    cluster = ClusterSpec.three_tier(2, 2, 2)
    lines = {k: tuple(v) for k, v in cluster.work_lines(2).items()}
    scenario = Scenario(
        cluster=cluster, mix=ORDERING_MIX, population=120, work_lines=lines
    )
    return scenario, cluster.default_configuration(), {}


def _ordering_starved():
    cluster = ClusterSpec.three_tier(1, 1, 1)
    scenario = Scenario(cluster=cluster, mix=ORDERING_MIX, population=250)
    config = cluster.default_configuration().replace(**{
        "app0.maxProcessors": 5,
        "app0.AJPmaxProcessors": 5,
        "app0.acceptCount": 5,
        "app0.AJPacceptCount": 5,
    })
    return scenario, config, {}


#: name -> builder returning (scenario, configuration, backend kwargs).
CASES = {
    "shopping-111": _shopping_small,
    "browsing-111-nav": _browsing_nav,
    "ordering-222-lines": _ordering_lines,
    "ordering-111-starved": _ordering_starved,
}


def build_case(name: str):
    """Instantiate one named case: (scenario, configuration, kwargs)."""
    return CASES[name]()


def _hex(value: float) -> str:
    return float(value).hex()


def measurement_to_jsonable(m: Measurement) -> dict:
    """A byte-exact JSON form of a measurement (floats as hex strings)."""
    return {
        "wips": _hex(m.wips),
        "raw_wips": _hex(m.raw_wips),
        "error_rate": _hex(m.error_rate),
        "response_time": _hex(m.response_time),
        "utilization": {
            node: {k: _hex(v) for k, v in sorted(u.as_dict().items())}
            for node, u in sorted(m.utilization.items())
        },
        "diagnostics": {
            k: _hex(v) for k, v in sorted(m.diagnostics.items())
        },
        "per_line_wips": {
            k: _hex(v) for k, v in sorted(m.per_line_wips.items())
        },
    }


def generate_fixture() -> dict:
    """Run the full matrix on the current backend and return the payload."""
    from repro.des.backend import SimulationBackend

    cases = []
    for name in sorted(CASES):
        scenario, config, kwargs = build_case(name)
        for time_scale in TIME_SCALES:
            backend = SimulationBackend(time_scale=time_scale, **kwargs)
            for seed in SEEDS:
                m = backend.measure(scenario, config, seed=seed)
                cases.append(
                    {
                        "scenario": name,
                        "seed": seed,
                        "time_scale": time_scale,
                        "measurement": measurement_to_jsonable(m),
                    }
                )
    return {"schema": "des_golden/v1", "cases": cases}


if __name__ == "__main__":
    FIXTURE_PATH.parent.mkdir(exist_ok=True)
    payload = generate_fixture()
    FIXTURE_PATH.write_text(json.dumps(payload, indent=1, sort_keys=True))
    print(f"wrote {FIXTURE_PATH} ({len(payload['cases'])} cases)")
