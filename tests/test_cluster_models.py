"""Tests for the per-server performance models (Squid / Tomcat / MySQL)."""

import pytest

from repro.cluster.appserver import AppServerModel
from repro.cluster.context import WorkloadContext
from repro.cluster.database import DatabaseModel
from repro.cluster.memory import MemoryModel
from repro.cluster.node import DEFAULT_NODE, NodeSpec
from repro.cluster.params import APP_PARAMS, DB_PARAMS, PROXY_PARAMS
from repro.cluster.proxy import ProxyModel
from repro.tpcw.catalog import Catalog
from repro.tpcw.interactions import BROWSING_MIX, ORDERING_MIX
from repro.util.units import GB, KB, MB


@pytest.fixture(scope="module")
def ctx():
    return WorkloadContext.for_mix(BROWSING_MIX, Catalog(scale=2000))


@pytest.fixture(scope="module")
def ordering_ctx():
    return WorkloadContext.for_mix(ORDERING_MIX, Catalog(scale=2000))


def _defaults(params):
    return {p.name: p.default for p in params}


class TestNodeSpec:
    def test_validation(self):
        with pytest.raises(ValueError):
            NodeSpec(cpu_cores=0)
        with pytest.raises(ValueError):
            NodeSpec(memory_bytes=0)

    def test_cpu_seconds_scales_with_speed(self):
        fast = NodeSpec(cpu_speed=2.0)
        assert fast.cpu_seconds(1.0) == 0.5

    def test_disk_seconds(self):
        spec = NodeSpec(disk_access_time=0.01, disk_transfer_rate=10 * MB)
        assert spec.disk_seconds(10 * MB, accesses=2) == pytest.approx(1.02)
        with pytest.raises(ValueError):
            spec.disk_seconds(-1.0)

    def test_nic_seconds(self):
        spec = NodeSpec(nic_rate=12.5e6)
        assert spec.nic_seconds(12.5e6) == pytest.approx(1.0)

    def test_table2_defaults(self):
        """Table 2: dual CPUs, 1 GB memory, 100 Mbps Ethernet."""
        assert DEFAULT_NODE.cpu_cores == 2
        assert DEFAULT_NODE.memory_bytes == 1 * GB
        assert DEFAULT_NODE.nic_rate == pytest.approx(100e6 / 8)


class TestMemoryModel:
    def test_no_penalty_below_threshold(self):
        m = MemoryModel(pressure_threshold=0.85)
        assert m.penalty(0.5 * GB, 1 * GB) == 1.0
        assert m.penalty(0.85 * GB, 1 * GB) == 1.0

    def test_penalty_at_capacity_equals_slope(self):
        m = MemoryModel(pressure_threshold=0.85, swap_slope=4.0)
        assert m.penalty(1 * GB, 1 * GB) == pytest.approx(4.0)

    def test_monotone(self):
        m = MemoryModel()
        values = [m.penalty(x * GB, 1 * GB) for x in (0.5, 0.9, 1.0, 1.2)]
        assert all(a <= b for a, b in zip(values, values[1:]))

    def test_continuous_at_threshold(self):
        m = MemoryModel()
        eps = 1e-6
        assert m.penalty((0.85 + eps) * GB, 1 * GB) == pytest.approx(1.0, abs=1e-3)

    def test_headroom(self):
        m = MemoryModel(pressure_threshold=0.85)
        assert m.headroom(0.5 * GB, 1 * GB) == pytest.approx(0.35 * GB)
        assert m.headroom(0.9 * GB, 1 * GB) < 0

    def test_validation(self):
        with pytest.raises(ValueError):
            MemoryModel(pressure_threshold=1.5)
        with pytest.raises(ValueError):
            MemoryModel(swap_slope=0.5)
        with pytest.raises(ValueError):
            MemoryModel().penalty(-1.0, 1.0)
        with pytest.raises(ValueError):
            MemoryModel().penalty(1.0, 0.0)


class TestProxyModel:
    def _eval(self, ctx, **overrides):
        cfg = _defaults(PROXY_PARAMS)
        cfg.update(overrides)
        return ProxyModel(DEFAULT_NODE).evaluate(cfg, ctx)

    def test_fractions_partition(self, ctx):
        ev = self._eval(ctx)
        assert 0.0 <= ev.mem_hit <= 1.0
        assert ev.mem_hit + ev.disk_hit <= 1.0 + 1e-9

    def test_more_cache_mem_more_memory_hits(self, ctx):
        small = self._eval(ctx, cache_mem=4)
        large = self._eval(ctx, cache_mem=128)
        assert large.mem_hit > small.mem_hit
        assert large.disk_demand < small.disk_demand
        assert large.memory_bytes > small.memory_bytes

    def test_bigger_in_memory_bound_admits_more(self, ctx):
        small = self._eval(ctx, maximum_object_size_in_memory=2, cache_mem=64)
        large = self._eval(ctx, maximum_object_size_in_memory=1024, cache_mem=64)
        assert large.mem_hit >= small.mem_hit

    def test_minimum_object_size_leaves_memory_cache_alone(self, ctx):
        """Raising the disk-cache minimum must not change memory hits (the
        Squid behaviour that makes the paper's tuned minimums harmless)."""
        base = self._eval(ctx, minimum_object_size=0)
        raised = self._eval(ctx, minimum_object_size=128)
        assert raised.mem_hit == pytest.approx(base.mem_hit)
        assert raised.disk_hit <= base.disk_hit

    def test_swap_watermarks_nearly_neutral(self, ctx):
        a = self._eval(ctx, cache_swap_low=70, cache_swap_high=98)
        b = self._eval(ctx, cache_swap_low=90, cache_swap_high=91)
        assert b.disk_demand == pytest.approx(a.disk_demand, rel=0.02)

    def test_bucket_size_costs_cpu(self, ctx):
        short = self._eval(ctx, store_objects_per_bucket=5)
        long = self._eval(ctx, store_objects_per_bucket=200)
        assert long.cpu_demand > short.cpu_demand

    def test_forwarding_accounting(self, ctx):
        ev = self._eval(ctx)
        assert 0.0 < ev.forward_dynamic < 1.0
        assert ev.forward_pages >= ev.forward_dynamic
        assert ev.forward_static >= 0.0

    def test_ordering_forwards_more_dynamics(self, ctx, ordering_ctx):
        b = self._eval(ctx)
        cfg = _defaults(PROXY_PARAMS)
        o = ProxyModel(DEFAULT_NODE).evaluate(cfg, ordering_ctx)
        assert o.forward_dynamic > b.forward_dynamic


class TestAppServerModel:
    def _eval(self, ctx, dynamic=0.5, static=3.0, conc=8.0, **overrides):
        cfg = _defaults(APP_PARAMS)
        cfg.update(overrides)
        return AppServerModel(DEFAULT_NODE).evaluate(
            cfg, ctx, dynamic_pages=dynamic, static_requests=static,
            concurrency=conc,
        )

    def test_negative_visits_rejected(self, ctx):
        with pytest.raises(ValueError):
            self._eval(ctx, dynamic=-1.0)

    def test_bigger_buffer_fewer_syscalls(self, ctx):
        small = self._eval(ctx, bufferSize=512)
        large = self._eval(ctx, bufferSize=16384)
        assert large.cpu_demand < small.cpu_demand

    def test_thread_memory_cost(self, ctx):
        few = self._eval(ctx, maxProcessors=5)
        many = self._eval(ctx, maxProcessors=512)
        assert many.memory_bytes > few.memory_bytes

    def test_spawn_churn_higher_when_warm_pool_small(self, ctx):
        cold = self._eval(ctx, minProcessors=1, conc=40.0)
        warm = self._eval(ctx, minProcessors=64, conc=40.0)
        assert cold.spawn_rate > warm.spawn_rate
        assert cold.cpu_demand > warm.cpu_demand

    def test_burstier_workload_spawns_more(self, ctx, ordering_ctx):
        b = self._eval(ctx, minProcessors=1, conc=40.0)
        o = AppServerModel(DEFAULT_NODE).evaluate(
            _defaults(APP_PARAMS), ordering_ctx,
            dynamic_pages=0.5, static_requests=3.0, concurrency=40.0,
        )
        assert b.spawn_rate > o.spawn_rate

    def test_pool_tuples(self, ctx):
        ev = self._eval(ctx, maxProcessors=33, acceptCount=44,
                        AJPmaxProcessors=55, AJPacceptCount=66)
        assert ev.http_pool == (33, 44)
        assert ev.ajp_pool == (55, 66)


class TestDatabaseModel:
    def _eval(self, ctx, dynamic=0.6, conc=8.0, **overrides):
        cfg = _defaults(DB_PARAMS)
        cfg.update(overrides)
        return DatabaseModel(DEFAULT_NODE).evaluate(
            cfg, ctx, dynamic_pages=dynamic, concurrency=conc
        )

    def test_negative_visits_rejected(self, ordering_ctx):
        with pytest.raises(ValueError):
            self._eval(ordering_ctx, dynamic=-0.1)

    def test_table_cache_reduces_misses_and_cpu(self, ordering_ctx):
        small = self._eval(ordering_ctx, table_cache=16)
        large = self._eval(ordering_ctx, table_cache=1024)
        assert large.table_miss < small.table_miss
        assert large.cpu_demand < small.cpu_demand

    def test_binlog_cache_reduces_spills(self, ordering_ctx):
        small = self._eval(ordering_ctx, binlog_cache_size=4096)
        large = self._eval(ordering_ctx, binlog_cache_size=1048576)
        assert large.binlog_spill < small.binlog_spill
        assert large.disk_demand < small.disk_demand

    def test_thread_cache_reduces_churn_cpu(self, ordering_ctx):
        cold = self._eval(ordering_ctx, thread_con=1, conc=60.0)
        warm = self._eval(ordering_ctx, thread_con=128, conc=60.0)
        assert warm.cpu_demand < cold.cpu_demand

    def test_join_buffer_size_flat_above_need(self, ordering_ctx):
        """The paper: 'reducing the join buffer size does not impact
        performance' — CPU is flat once the buffer covers the joins."""
        mid = self._eval(ordering_ctx, join_buffer_size=524288)
        big = self._eval(ordering_ctx, join_buffer_size=16777216)
        assert mid.cpu_demand == pytest.approx(big.cpu_demand)
        assert big.memory_bytes > mid.memory_bytes

    def test_tiny_join_buffer_costs_cpu(self, ordering_ctx):
        tiny = self._eval(ordering_ctx, join_buffer_size=131072)
        ok = self._eval(ordering_ctx, join_buffer_size=524288)
        assert tiny.cpu_demand > ok.cpu_demand

    def test_connection_memory(self, ordering_ctx):
        few = self._eval(ordering_ctx, max_connections=10)
        many = self._eval(ordering_ctx, max_connections=1000)
        assert many.memory_bytes > few.memory_bytes
        assert many.connection_limit == 1000

    def test_small_thread_stack_penalizes_heavy_queries(self, ordering_ctx):
        small = self._eval(ordering_ctx, thread_stack=32768)
        safe = self._eval(ordering_ctx, thread_stack=262144)
        assert small.cpu_demand > safe.cpu_demand

    def test_delayed_queue_batches_inserts(self, ordering_ctx):
        small = self._eval(ordering_ctx, delayed_queue_size=100)
        large = self._eval(ordering_ctx, delayed_queue_size=10000)
        assert large.disk_demand < small.disk_demand

    def test_net_buffer_reduces_syscall_cpu(self, ordering_ctx):
        small = self._eval(ordering_ctx, net_buffer_length=1024)
        large = self._eval(ordering_ctx, net_buffer_length=65536)
        assert large.cpu_demand < small.cpu_demand
