"""Fixture-driven tests for every shipped reproducibility rule.

Each rule has at least three fixtures under ``tests/lint_fixtures/``:
``*_bad.py`` (triggers the rule), ``*_ok.py`` (clean), and ``*_noqa.py``
(violations suppressed in place).  The first line of every fixture is a
``# lint-path: <path>`` header giving the synthetic repository path the
snippet is linted *as* — that is what exercises the per-rule path
scoping (RPL002 only fires under ``sim/``/``des/``/..., RPL003 only in
serialization/fingerprint paths, and so on).
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

from repro.lint import ALL_RULES, Analyzer, rules_by_id

FIXTURES = Path(__file__).parent / "lint_fixtures"

_ANALYZER = Analyzer(ALL_RULES)

#: fixture stem -> (expected rule id, expected finding count).
EXPECTED_BAD = {
    "rpl001_bad": ("RPL001", 6),
    "rpl002_bad": ("RPL002", 3),
    "rpl003_bad": ("RPL003", 3),
    "rpl003_fingerprint_bad": ("RPL003", 1),
    "rpl004_bad": ("RPL004", 3),
    "rpl005_bad": ("RPL005", 4),
    "rpl006_bad": ("RPL006", 3),
    "rpl007_bad": ("RPL007", 4),
    "rpl008_bad": ("RPL008", 2),
    "rpl009_bad": ("RPL009", 4),
    "rpl101_bad": ("RPL101", 3),
    "rpl102_bad": ("RPL102", 2),
    "rpl103_bad": ("RPL103", 1),
    "rpl104_bad": ("RPL104", 4),
    "rpl105_bad": ("RPL105", 4),
    "rpl106_bad": ("RPL106", 4),
    "rpl107_bad": ("RPL107", 4),
    "rpl108_bad": ("RPL108", 2),
}

CLEAN = sorted(
    p.stem
    for p in FIXTURES.glob("*.py")
    if p.stem.endswith(("_ok", "_noqa"))
)


def lint_fixture(stem: str):
    path = FIXTURES / f"{stem}.py"
    source = path.read_text()
    header = re.match(r"# lint-path: (\S+)", source)
    assert header, f"{path} is missing its '# lint-path:' header"
    return _ANALYZER.lint_source(source, path=header.group(1))


def test_every_rule_has_bad_ok_and_noqa_fixtures():
    ids = sorted(rules_by_id())
    assert len(ids) >= 8
    for rule_id in ids:
        stem = rule_id.lower()
        assert (FIXTURES / f"{stem}_bad.py").is_file(), f"no bad fixture for {rule_id}"
        assert (FIXTURES / f"{stem}_ok.py").is_file(), f"no ok fixture for {rule_id}"
        assert (FIXTURES / f"{stem}_noqa.py").is_file(), f"no noqa fixture for {rule_id}"


@pytest.mark.parametrize("stem", sorted(EXPECTED_BAD))
def test_bad_fixture_triggers_rule(stem):
    rule_id, count = EXPECTED_BAD[stem]
    findings = lint_fixture(stem)
    assert [f.rule for f in findings] == [rule_id] * count, findings


@pytest.mark.parametrize("stem", CLEAN)
def test_clean_fixture_has_no_findings(stem):
    assert lint_fixture(stem) == []


def test_fixture_inventory_is_fully_expected():
    bad = {p.stem for p in FIXTURES.glob("*_bad.py")}
    assert bad == set(EXPECTED_BAD), "update EXPECTED_BAD for new fixtures"


# ----------------------------------------------------------------------
# Targeted behaviours not covered by the fixture sweep.
# ----------------------------------------------------------------------
def test_rpl001_out_of_scope_in_util_rng():
    source = "import numpy as np\nrng = np.random.default_rng()\n"
    assert _ANALYZER.lint_source(source, path="src/repro/util/rng.py") == []
    assert _ANALYZER.lint_source(source, path="src/repro/des/servers.py")


def test_rpl002_out_of_scope_outside_deterministic_subsystems():
    source = "import time\nstart = time.time()\n"
    assert _ANALYZER.lint_source(source, path="benchmarks/bench_x.py") == []
    assert _ANALYZER.lint_source(source, path="src/repro/cli.py") == []
    assert _ANALYZER.lint_source(source, path="src/repro/des/backend.py")


def test_rpl004_out_of_scope_outside_solver_code():
    source = "def f(x):\n    return x == 0.5\n"
    assert _ANALYZER.lint_source(source, path="src/repro/tpcw/mix.py") == []
    assert _ANALYZER.lint_source(source, path="src/repro/model/mva.py")


def test_seeded_violation_in_des_servers_fails_lint():
    """The acceptance-criterion canary: an np.random.rand call added to
    des/servers.py must produce an RPL001 finding."""
    real = Path(__file__).parents[1] / "src" / "repro" / "des" / "servers.py"
    poisoned = real.read_text() + "\nimport numpy as np\n_x = np.random.rand(3)\n"
    findings = _ANALYZER.lint_source(poisoned, path="src/repro/des/servers.py")
    assert any(f.rule == "RPL001" for f in findings)


def test_syntax_error_reports_parse_finding():
    findings = _ANALYZER.lint_source("def broken(:\n", path="x.py")
    assert [f.rule for f in findings] == ["RPL000"]


def test_blanket_noqa_suppresses_all_rules():
    source = "import numpy as np\n_x = np.random.rand()  # repro: noqa\n"
    assert _ANALYZER.lint_source(source, path="src/repro/des/x.py") == []


def test_noqa_for_other_rule_does_not_suppress():
    source = "import numpy as np\n_x = np.random.rand()  # repro: noqa[RPL008]\n"
    findings = _ANALYZER.lint_source(source, path="src/repro/des/x.py")
    assert [f.rule for f in findings] == ["RPL001"]
