"""Tests for the WIRT (response-time compliance) tracker."""

import pytest

from repro.cluster.topology import ClusterSpec
from repro.des.backend import SimulationBackend
from repro.model.base import Scenario
from repro.tpcw.interactions import Interaction, SHOPPING_MIX
from repro.tpcw.wirt import WIRT_LIMITS, WirtTracker


class TestLimitsTable:
    def test_every_interaction_has_a_limit(self):
        assert set(WIRT_LIMITS) == set(Interaction)

    def test_heavy_pages_get_more_headroom(self):
        assert WIRT_LIMITS[Interaction.BEST_SELLERS] > WIRT_LIMITS[Interaction.HOME]
        assert WIRT_LIMITS[Interaction.ADMIN_CONFIRM] == max(WIRT_LIMITS.values())


class TestTracker:
    def test_validation(self):
        with pytest.raises(ValueError):
            WirtTracker(quantile=0.0)
        with pytest.raises(ValueError):
            WirtTracker(limits={Interaction.HOME: 3.0})  # incomplete
        tracker = WirtTracker()
        with pytest.raises(ValueError):
            tracker.record(Interaction.HOME, -1.0)

    def test_empty_is_compliant(self):
        tracker = WirtTracker()
        assert tracker.compliant()
        assert tracker.percentile_of(Interaction.HOME) is None

    def test_percentile_and_violation(self):
        tracker = WirtTracker()
        for latency in [0.1] * 9 + [10.0]:
            tracker.record(Interaction.HOME, latency)
        # p90 lands between 0.1 and 10 by interpolation; push clearly over.
        for _ in range(20):
            tracker.record(Interaction.HOME, 10.0)
        assert tracker.percentile_of(Interaction.HOME) > 3.0
        assert Interaction.HOME in tracker.violations()
        assert not tracker.compliant()

    def test_compliance_within_limits(self):
        tracker = WirtTracker()
        for interaction in Interaction:
            for _ in range(10):
                tracker.record(interaction, 0.2)
        assert tracker.compliant()
        assert tracker.violations() == {}

    def test_table_renders(self):
        tracker = WirtTracker()
        tracker.record(Interaction.HOME, 0.5)
        text = tracker.to_table().render()
        assert "Home" in text and "Limit" in text
        assert "Buy Confirm" in text


class TestDesIntegration:
    def test_healthy_system_is_wirt_compliant(self):
        cluster = ClusterSpec.three_tier(1, 1, 1)
        des = SimulationBackend(time_scale=0.05)
        sc = Scenario(cluster=cluster, mix=SHOPPING_MIX, population=300)
        m = des.measure(sc, cluster.default_configuration(), seed=3)
        assert m.diagnostics["wirt_compliant"] == 1.0
        assert des.last_wirt is not None
        assert des.last_wirt.count(Interaction.HOME) > 0

    def test_overloaded_system_violates_wirt(self):
        """Deep saturation must show up as WIRT non-compliance — the spec's
        guard against quoting WIPS from an unusable system."""
        cluster = ClusterSpec.three_tier(1, 1, 1)
        des = SimulationBackend(time_scale=0.05)
        sc = Scenario(cluster=cluster, mix=SHOPPING_MIX, population=1400)
        m = des.measure(sc, cluster.default_configuration(), seed=4)
        assert m.diagnostics["wirt_compliant"] == 0.0
        assert des.last_wirt.violations()
