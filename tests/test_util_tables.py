"""Tests for repro.util.tables."""

import pytest

from repro.util.tables import Table, format_table


class TestTable:
    def test_basic_render(self):
        t = Table("demo", ["a", "b"])
        t.add_row(1, "x")
        out = t.render()
        assert "== demo ==" in out
        assert "a" in out and "b" in out
        assert "x" in out

    def test_row_width_mismatch_rejected(self):
        t = Table("demo", ["a", "b"])
        with pytest.raises(ValueError):
            t.add_row(1)

    def test_columns_aligned(self):
        t = Table("demo", ["name", "v"])
        t.add_row("long-name-here", 1)
        t.add_row("s", 22)
        lines = t.render().splitlines()
        header, sep, row1, row2 = lines[1:5]
        # The separator spans the widest cell in each column.
        assert len(sep) >= len(header.rstrip())

    def test_float_formatting(self):
        t = Table("demo", ["v"])
        t.add_row(3.14159)
        assert "3.142" in t.render()

    def test_int_thousands_separator(self):
        t = Table("demo", ["v"])
        t.add_row(1048576)
        assert "1,048,576" in t.render()

    def test_str_dunder(self):
        t = Table("demo", ["a"])
        t.add_row("z")
        assert str(t) == t.render()


class TestFormatTable:
    def test_mismatched_row_rejected(self):
        with pytest.raises(ValueError):
            format_table("t", ["a", "b"], [["only-one"]])

    def test_empty_rows_ok(self):
        out = format_table("t", ["a"], [])
        assert "== t ==" in out
