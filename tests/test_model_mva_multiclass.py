"""Tests for the multi-class MVA solver and the aggregation it validates."""

import pytest

from repro.model.mva import Station, solve_mva
from repro.model.mva_multiclass import (
    CustomerClass,
    solve_mva_multiclass,
)


def _stations():
    return [Station("cpu", 0.0, 2), Station("disk", 0.0)]


class TestValidation:
    def test_needs_classes(self):
        with pytest.raises(ValueError):
            solve_mva_multiclass([Station("s", 0.1)], [])

    def test_class_validation(self):
        with pytest.raises(ValueError):
            CustomerClass("c", 0, 1.0, {"s": 0.1})
        with pytest.raises(ValueError):
            CustomerClass("c", 1, -1.0, {"s": 0.1})
        with pytest.raises(ValueError):
            CustomerClass("c", 1, 1.0, {"s": -0.1})

    def test_unknown_station_rejected(self):
        with pytest.raises(ValueError, match="unknown"):
            solve_mva_multiclass(
                [Station("s", 0.1)],
                [CustomerClass("c", 5, 1.0, {"ghost": 0.1})],
            )

    def test_duplicate_station_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            solve_mva_multiclass(
                [Station("s", 0.1), Station("s", 0.2)],
                [CustomerClass("c", 5, 1.0, {"s": 0.1})],
            )


class TestSingleClassEquivalence:
    @pytest.mark.parametrize("n", [1, 10, 80, 400])
    def test_one_class_matches_single_class_solver(self, n):
        stations = [Station("a", 0.03, 2), Station("b", 0.06)]
        single = solve_mva(stations, n, 2.0)
        multi = solve_mva_multiclass(
            stations,
            [CustomerClass("only", n, 2.0, {"a": 0.03, "b": 0.06})],
        )
        assert multi.total_throughput == pytest.approx(
            single.throughput, rel=0.02
        )

    def test_identical_split_classes_match_merged(self):
        """Two identical classes of N/2 each ≈ one class of N."""
        stations = [Station("a", 0.04), Station("b", 0.02)]
        demands = {"a": 0.04, "b": 0.02}
        merged = solve_mva_multiclass(
            stations, [CustomerClass("all", 100, 1.5, demands)]
        )
        split = solve_mva_multiclass(
            stations,
            [
                CustomerClass("half1", 50, 1.5, demands),
                CustomerClass("half2", 50, 1.5, demands),
            ],
        )
        assert split.total_throughput == pytest.approx(
            merged.total_throughput, rel=0.03
        )


class TestTwoClassBehaviour:
    def test_light_load_littles_law(self):
        stations = [Station("s", 0.001)]
        result = solve_mva_multiclass(
            stations,
            [
                CustomerClass("a", 5, 1.0, {"s": 0.001}),
                CustomerClass("b", 10, 2.0, {"s": 0.001}),
            ],
        )
        assert result.throughput["a"] == pytest.approx(5 / 1.001, rel=0.01)
        assert result.throughput["b"] == pytest.approx(10 / 2.001, rel=0.01)

    def test_shared_bottleneck_caps_combined_flow(self):
        stations = [Station("s", 0.1)]
        result = solve_mva_multiclass(
            stations,
            [
                CustomerClass("a", 200, 1.0, {"s": 0.1}),
                CustomerClass("b", 200, 1.0, {"s": 0.1}),
            ],
        )
        assert result.total_throughput == pytest.approx(10.0, rel=0.05)
        assert result.utilization["s"] == pytest.approx(1.0, abs=0.02)

    def test_heavy_class_slows_light_class(self):
        """Cross-class interference: adding a demanding class must inflate
        the light class's response time."""
        stations = [Station("s", 0.01)]
        alone = solve_mva_multiclass(
            stations, [CustomerClass("light", 20, 1.0, {"s": 0.01})]
        )
        together = solve_mva_multiclass(
            stations,
            [
                CustomerClass("light", 20, 1.0, {"s": 0.01}),
                CustomerClass("heavy", 100, 0.5, {"s": 0.05}),
            ],
        )
        assert together.response_time["light"] > alone.response_time["light"]
        assert together.throughput["light"] < alone.throughput["light"]

    def test_class_with_zero_demand_at_station(self):
        stations = [Station("a", 0.0), Station("b", 0.0)]
        result = solve_mva_multiclass(
            stations,
            [
                CustomerClass("a-only", 30, 1.0, {"a": 0.05}),
                CustomerClass("b-only", 30, 1.0, {"b": 0.05}),
            ],
        )
        # Disjoint stations: each class behaves like a separate network.
        assert result.throughput["a-only"] == pytest.approx(
            result.throughput["b-only"], rel=0.01
        )


class TestMixAggregationValidity:
    def test_per_mix_classes_close_to_aggregate(self):
        """The backend's single-aggregate-class shortcut: splitting the EB
        population into a browsing-like and an ordering-like class with the
        same *average* demands changes total throughput only mildly."""
        stations = [Station("proxy", 0.0), Station("app", 0.0, 2)]
        light = {"proxy": 0.012, "app": 0.008}
        heavy = {"proxy": 0.006, "app": 0.030}
        avg = {k: (light[k] + heavy[k]) / 2 for k in light}
        aggregate = solve_mva_multiclass(
            stations, [CustomerClass("avg", 400, 7.0, avg)]
        )
        split = solve_mva_multiclass(
            stations,
            [
                CustomerClass("light", 200, 7.0, light),
                CustomerClass("heavy", 200, 7.0, heavy),
            ],
        )
        assert split.total_throughput == pytest.approx(
            aggregate.total_throughput, rel=0.10
        )
