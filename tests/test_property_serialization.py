"""Property-based round-trip tests for persistence and the wire format."""

import io

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.harmony.history import TuningHistory
from repro.harmony.parameter import Configuration
from repro.harmony.protocol import FetchReply, ReportRequest, UnregisterReply
from repro.harmony.wire import decode, encode
from repro.util.serialization import (
    configuration_from_json,
    configuration_to_json,
    load_history,
    save_history,
)

param_names = st.text(
    alphabet=st.characters(min_codepoint=33, max_codepoint=126),
    min_size=1,
    max_size=24,
)
config_dicts = st.dictionaries(
    param_names, st.integers(min_value=-(2**40), max_value=2**40),
    min_size=1, max_size=12,
)
performances = st.floats(
    min_value=-1e9, max_value=1e9, allow_nan=False, allow_infinity=False
)


class TestConfigurationRoundTrip:
    @given(config_dicts)
    def test_json_round_trip(self, values):
        cfg = Configuration(values)
        assert configuration_from_json(configuration_to_json(cfg)) == cfg

    @given(config_dicts)
    def test_compact_round_trip(self, values):
        cfg = Configuration(values)
        assert configuration_from_json(
            configuration_to_json(cfg, indent=None)
        ) == cfg


class TestHistoryRoundTrip:
    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.tuples(config_dicts, performances), min_size=0, max_size=20))
    def test_jsonl_round_trip(self, records):
        history = TuningHistory()
        for values, perf in records:
            history.append(Configuration(values), perf)
        buf = io.StringIO()
        save_history(history, buf)
        buf.seek(0)
        loaded = load_history(buf)
        assert len(loaded) == len(history)
        for a, b in zip(history, loaded):
            assert a.configuration == b.configuration
            assert a.performance == b.performance


class TestWireRoundTrip:
    @given(config_dicts)
    def test_fetch_reply(self, values):
        msg = FetchReply("client", Configuration(values))
        assert decode(encode(msg)) == msg

    @given(config_dicts)
    def test_unregister_reply(self, values):
        msg = UnregisterReply("client", Configuration(values))
        assert decode(encode(msg)) == msg

    @given(performances)
    def test_report_request(self, perf):
        msg = ReportRequest("client", perf)
        decoded = decode(encode(msg))
        assert decoded.performance == perf
