"""Tests for the simulation kernel's event loop and primitive events."""

import pytest

from repro.sim.core import Environment, Event, SimulationError, Timeout


class TestEnvironment:
    def test_clock_starts_at_zero(self):
        assert Environment().now == 0.0

    def test_custom_initial_time(self):
        assert Environment(5.0).now == 5.0

    def test_run_empty_returns_now(self):
        env = Environment()
        assert env.run() == 0.0

    def test_run_until_advances_clock_without_events(self):
        env = Environment()
        env.run(until=10.0)
        assert env.now == 10.0

    def test_run_until_past_rejected(self):
        env = Environment(5.0)
        with pytest.raises(SimulationError):
            env.run(until=1.0)

    def test_step_empty_rejected(self):
        with pytest.raises(SimulationError):
            Environment().step()

    def test_peek(self):
        env = Environment()
        assert env.peek() == float("inf")
        env.timeout(3.0)
        assert env.peek() == 3.0


class TestTimeout:
    def test_fires_at_delay(self):
        env = Environment()
        fired = []
        env.timeout(2.5).add_callback(lambda e: fired.append(env.now))
        env.run()
        assert fired == [2.5]

    def test_order_preserved_for_equal_times(self):
        env = Environment()
        order = []
        env.timeout(1.0).add_callback(lambda e: order.append("first"))
        env.timeout(1.0).add_callback(lambda e: order.append("second"))
        env.run()
        assert order == ["first", "second"]

    def test_negative_delay_rejected(self):
        env = Environment()
        with pytest.raises(SimulationError):
            env.timeout(-1.0)

    def test_timeout_value(self):
        env = Environment()
        values = []
        env.timeout(1.0, value="payload").add_callback(
            lambda e: values.append(e.value)
        )
        env.run()
        assert values == ["payload"]

    def test_run_until_excludes_later_events(self):
        env = Environment()
        fired = []
        env.timeout(1.0).add_callback(lambda e: fired.append(1))
        env.timeout(5.0).add_callback(lambda e: fired.append(5))
        env.run(until=2.0)
        assert fired == [1]
        assert env.now == 2.0


class TestEvent:
    def test_succeed_delivers_value(self):
        env = Environment()
        ev = env.event()
        got = []
        ev.add_callback(lambda e: got.append(e.value))
        ev.succeed(42)
        env.run()
        assert got == [42]

    def test_double_trigger_rejected(self):
        env = Environment()
        ev = env.event()
        ev.succeed()
        with pytest.raises(SimulationError):
            ev.succeed()
        env.run()

    def test_fail_requires_exception(self):
        env = Environment()
        with pytest.raises(SimulationError):
            env.event().fail("not an exception")  # type: ignore[arg-type]

    def test_fail_sets_exception(self):
        env = Environment()
        ev = env.event()
        boom = RuntimeError("boom")
        ev.fail(boom)
        env.run()
        assert ev.exception is boom

    def test_callback_after_processed_runs_immediately(self):
        env = Environment()
        ev = env.event()
        ev.succeed(7)
        env.run()
        got = []
        ev.add_callback(lambda e: got.append(e.value))
        assert got == [7]

    def test_triggered_and_processed_flags(self):
        env = Environment()
        ev = env.event()
        assert not ev.triggered and not ev.processed
        ev.succeed()
        assert ev.triggered and not ev.processed
        env.run()
        assert ev.processed
