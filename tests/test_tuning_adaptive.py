"""Tests for the adaptive (workload-shift) tuning session."""

import pytest

from repro.cluster.topology import ClusterSpec
from repro.model.analytic import AnalyticBackend
from repro.model.base import Scenario
from repro.tpcw.interactions import BROWSING_MIX, ORDERING_MIX
from repro.tuning.adaptive import AdaptiveTuningSession
from repro.tuning.session import ClusterTuningSession, make_scheme


def _session(seed=1):
    scenario = Scenario(
        cluster=ClusterSpec.three_tier(1, 1, 1),
        mix=BROWSING_MIX,
        population=750,
    )
    inner = ClusterTuningSession(
        AnalyticBackend(), scenario,
        scheme=make_scheme(scenario, "default"), seed=seed,
    )
    return AdaptiveTuningSession(inner)


class TestValidation:
    def test_bad_threshold(self):
        with pytest.raises(ValueError):
            AdaptiveTuningSession(_session().session, shift_threshold=0.0)

    def test_bad_windows(self):
        with pytest.raises(ValueError):
            AdaptiveTuningSession(
                _session().session, detect_window=5, plateau_window=3
            )


class TestShiftDetection:
    def test_no_restart_under_stationary_workload(self):
        adaptive = _session(seed=2)
        adaptive.run(40)
        # Normal tuning noise must not trigger restarts.
        assert adaptive.restarts == []

    def test_restart_after_workload_switch(self):
        adaptive = _session(seed=3)
        adaptive.run(30)
        adaptive.set_mix(ORDERING_MIX)
        adaptive.run(20)
        assert len(adaptive.restarts) >= 1
        assert adaptive.restarts[0] >= 30

    def test_search_continues_after_restart(self):
        adaptive = _session(seed=4)
        adaptive.run(30)
        adaptive.set_mix(ORDERING_MIX)
        adaptive.run(30)
        assert len(adaptive.history) == 60

    def test_restart_resumes_from_best_known(self):
        adaptive = _session(seed=5)
        adaptive.run(30)
        adaptive.set_mix(ORDERING_MIX)
        adaptive.run(adaptive.plateau_window + 2)
        assert adaptive.restarts, "expected the switch to trigger a restart"
        r = adaptive.restarts[0]
        history = adaptive.history
        # The first configuration measured after the restart is the best
        # configuration known at restart time (search resumes from it).
        best_at_restart = max(
            history.records[:r], key=lambda rec: rec.performance
        ).configuration
        assert history[r].configuration == best_at_restart
