"""Tests for the shared experiment runner helpers."""

import pytest

from repro.cluster.topology import ClusterSpec
from repro.experiments.runner import ExperimentConfig, make_backend, remeasure
from repro.model.analytic import AnalyticBackend
from repro.model.base import MemoizedBackend, Scenario
from repro.tpcw.interactions import SHOPPING_MIX


class TestExperimentConfig:
    def test_defaults_follow_paper_protocol(self):
        cfg = ExperimentConfig()
        assert cfg.iterations == 200
        assert cfg.window_start() == 100  # "the second 100 iterations"

    def test_scaled(self):
        cfg = ExperimentConfig().scaled(40)
        assert cfg.iterations == 40
        assert cfg.seed == ExperimentConfig().seed  # everything else kept
        assert cfg.window_start() == 20

    def test_frozen(self):
        with pytest.raises(Exception):
            ExperimentConfig().iterations = 7  # type: ignore[misc]


class TestMakeBackend:
    def test_returns_memoized_analytic(self):
        backend = make_backend()
        assert isinstance(backend, MemoizedBackend)
        assert isinstance(backend.backend, AnalyticBackend)

    def test_no_cache_returns_bare_analytic(self):
        cfg = ExperimentConfig(memoize=False)
        assert isinstance(make_backend(cfg), AnalyticBackend)

    def test_memoized_matches_bare(self):
        cluster = ClusterSpec.three_tier(1, 1, 1)
        scenario = Scenario(cluster=cluster, mix=SHOPPING_MIX, population=400)
        cfg = cluster.default_configuration()
        memoized = make_backend()
        bare = make_backend(ExperimentConfig(memoize=False))
        first = memoized.measure(scenario, cfg, seed=9)
        again = memoized.measure(scenario, cfg, seed=9)
        assert first == bare.measure(scenario, cfg, seed=9)
        assert again is first  # served from the cache
        assert memoized.stats.hits == 1


class TestRemeasure:
    @pytest.fixture(scope="class")
    def setup(self):
        cluster = ClusterSpec.three_tier(1, 1, 1)
        scenario = Scenario(cluster=cluster, mix=SHOPPING_MIX, population=400)
        return AnalyticBackend(), scenario, cluster.default_configuration()

    def test_uses_fresh_seeds(self, setup):
        backend, scenario, cfg = setup
        stats = remeasure(backend, scenario, cfg, seed=1, iterations=8)
        assert stats.count == 8
        assert stats.stddev > 0  # distinct noise draws

    def test_deterministic_per_seed(self, setup):
        backend, scenario, cfg = setup
        a = remeasure(backend, scenario, cfg, seed=1, iterations=5)
        b = remeasure(backend, scenario, cfg, seed=1, iterations=5)
        assert a.mean == b.mean

    def test_different_seed_different_mean(self, setup):
        backend, scenario, cfg = setup
        a = remeasure(backend, scenario, cfg, seed=1, iterations=5)
        b = remeasure(backend, scenario, cfg, seed=2, iterations=5)
        assert a.mean != b.mean

    def test_debiases_lucky_best(self, setup):
        """The motivating property: re-measured mean sits near the model's
        true value, not at the run's luckiest draw."""
        backend, scenario, cfg = setup
        from repro.model.noise import NoiseModel

        quiet = AnalyticBackend(noise=NoiseModel(0.0, 0.0, 0.0))
        truth = quiet.measure(scenario, cfg, seed=0).wips
        stats = remeasure(backend, scenario, cfg, seed=3, iterations=20)
        assert stats.mean == pytest.approx(truth, rel=0.03)
        assert stats.maximum > stats.mean  # a lucky draw exists above it
