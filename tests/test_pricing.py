"""Tests for the Dollars/WIPS pricing model and the layout experiment."""

import pytest

from repro.cluster.node import NodeSpec
from repro.cluster.pricing import PricingModel
from repro.cluster.topology import ClusterSpec
from repro.experiments import ExperimentConfig
from repro.experiments import price_performance
from repro.util.units import GB


class TestPricingModel:
    def test_validation(self):
        with pytest.raises(ValueError):
            PricingModel(base_node_cost=-1)
        with pytest.raises(ValueError):
            PricingModel(maintenance_factor=0.5)

    def test_node_cost_components(self):
        model = PricingModel(
            base_node_cost=1000, per_core_cost=100, per_gb_memory_cost=200,
            disk_cost=50, network_port_cost=25, maintenance_factor=1.0,
        )
        spec = NodeSpec(cpu_cores=2, memory_bytes=1 * GB)
        assert model.node_cost(spec) == pytest.approx(1000 + 200 + 200 + 50 + 25)

    def test_bigger_machine_costs_more(self):
        model = PricingModel()
        small = NodeSpec()
        big = NodeSpec(cpu_cores=4, memory_bytes=4 * GB)
        assert model.node_cost(big) > model.node_cost(small)

    def test_cluster_cost_sums_nodes(self):
        model = PricingModel()
        c3 = ClusterSpec.three_tier(1, 1, 1)
        c6 = ClusterSpec.three_tier(2, 2, 2)
        assert model.cluster_cost(c6) == pytest.approx(2 * model.cluster_cost(c3))

    def test_dollars_per_wips(self):
        model = PricingModel()
        cluster = ClusterSpec.three_tier(1, 1, 1)
        cost = model.cluster_cost(cluster)
        assert model.dollars_per_wips(cluster, 100.0) == pytest.approx(cost / 100)
        with pytest.raises(ValueError):
            model.dollars_per_wips(cluster, 0.0)

    def test_maintenance_factor_scales(self):
        bare = PricingModel(maintenance_factor=1.0)
        with_maint = PricingModel(maintenance_factor=1.2)
        spec = NodeSpec()
        assert with_maint.node_cost(spec) == pytest.approx(
            1.2 * bare.node_cost(spec)
        )


class TestPricePerformanceExperiment:
    @pytest.fixture(scope="class")
    def result(self):
        return price_performance.run(
            ExperimentConfig(baseline_iterations=6, cluster_population=2000),
            mix_name="ordering",
            machines=6,
            layouts=[(4, 2), (3, 3), (2, 4)],
        )

    def test_rows_cover_layouts(self, result):
        assert {r.label for r in result.rows} == {
            "4p/2a/2d", "3p/3a/2d", "2p/4a/2d",
        }

    def test_same_budget_different_value(self, result):
        """Equal hardware cost, materially different $/WIPS — the point."""
        costs = {r.cost for r in result.rows}
        assert len(costs) == 1  # same machines everywhere
        assert result.worst().dollars_per_wips > 1.2 * result.best().dollars_per_wips

    def test_ordering_prefers_app_heavy_layouts(self, result):
        best = result.best()
        assert best.apps >= best.proxies

    def test_table_renders(self, result):
        text = result.to_table().render()
        assert "$/WIPS" in text and "3p/3a/2d" in text
