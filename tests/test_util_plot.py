"""Tests for the terminal plotting helpers."""

import pytest

from repro.util.plot import histogram, line_chart, sparkline


class TestSparkline:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            sparkline([])

    def test_length_bounded_by_width(self):
        s = sparkline(list(range(500)), width=40)
        assert len(s) == 40

    def test_short_series_kept_whole(self):
        assert len(sparkline([1.0, 2.0, 3.0], width=40)) == 3

    def test_monotone_series_monotone_blocks(self):
        s = sparkline([0, 1, 2, 3, 4, 5, 6, 7], width=8)
        assert list(s) == sorted(s)

    def test_flat_series(self):
        s = sparkline([5.0] * 10, width=10)
        assert s == s[0] * 10

    def test_custom_bounds(self):
        # With lo/hi pinned wide, a mid-level series renders mid blocks.
        s = sparkline([50.0] * 5, width=5, lo=0.0, hi=100.0)
        assert "▁" not in s and "█" not in s


class TestLineChart:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            line_chart([])

    def test_too_small_rejected(self):
        with pytest.raises(ValueError):
            line_chart([1.0, 2.0], width=4)

    def test_shape(self):
        chart = line_chart(list(range(100)), width=50, height=8, title="t")
        lines = chart.splitlines()
        assert lines[0] == "t"
        assert len(lines) == 1 + 8 + 1  # title + rows + axis

    def test_extremes_labelled(self):
        chart = line_chart([10.0, 20.0, 30.0], width=30, height=5)
        assert "30.0" in chart
        assert "10.0" in chart

    def test_markers_drawn(self):
        chart = line_chart([1.0] * 100, width=50, height=5, markers=[50])
        assert "|" in chart

    def test_contains_points(self):
        assert "*" in line_chart([1.0, 5.0, 2.0], width=30, height=5)


class TestHistogram:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            histogram([])

    def test_bins_validation(self):
        with pytest.raises(ValueError):
            histogram([1.0], bins=0)

    def test_counts_sum(self):
        data = [1.0, 1.1, 2.0, 2.1, 9.9]
        out = histogram(data, bins=5)
        import re

        counts = [int(m) for m in re.findall(r"\((\d+)\)", out)]
        assert sum(counts) == len(data)

    def test_flat_data(self):
        out = histogram([3.0, 3.0, 3.0])
        assert "(3)" in out

    def test_peak_has_longest_bar(self):
        data = [1.0] * 10 + [2.0]
        out = histogram(data, bins=2, width=20)
        lines = out.splitlines()
        assert lines[0].count("#") > lines[-1].count("#")
