"""Tests for tuning histories and their convergence metrics."""

import numpy as np
import pytest

from repro.harmony.history import TuningHistory
from repro.harmony.parameter import Configuration


def _history(values):
    h = TuningHistory()
    for i, v in enumerate(values):
        h.append(Configuration({"x": i}), v)
    return h


class TestBasics:
    def test_append_and_indexing(self):
        h = _history([1.0, 2.0])
        assert len(h) == 2
        assert h[0].iteration == 0
        assert h[1].performance == 2.0
        assert [r.performance for r in h] == [1.0, 2.0]

    def test_best(self):
        h = _history([1.0, 5.0, 3.0])
        assert h.best().iteration == 1
        assert h.best_configuration() == Configuration({"x": 1})

    def test_best_empty_rejected(self):
        with pytest.raises(ValueError):
            TuningHistory().best()

    def test_performances_array(self):
        h = _history([1.0, 2.0, 3.0])
        assert np.array_equal(h.performances(), [1.0, 2.0, 3.0])


class TestWindows:
    def test_window_stats(self):
        h = _history([0.0, 0.0, 10.0, 20.0])
        s = h.window_stats(2)
        assert s.mean == 15.0
        assert s.count == 2

    def test_window_with_stop(self):
        h = _history([1.0, 2.0, 3.0, 4.0])
        assert h.window_stats(1, 3).mean == 2.5

    def test_fraction_above(self):
        h = _history([1.0, 5.0, 5.0, 1.0])
        assert h.fraction_above(2.0) == 0.5
        assert h.fraction_above(2.0, start=1, stop=3) == 1.0

    def test_fraction_above_empty_window_rejected(self):
        h = _history([1.0])
        with pytest.raises(ValueError):
            h.fraction_above(0.0, start=5)


class TestConvergence:
    def test_immediate_convergence(self):
        h = _history([10.0] * 30)
        assert h.iterations_to_converge(settle=5) == 0

    def test_step_convergence(self):
        values = [1.0] * 20 + [10.0] * 30
        h = _history(values)
        assert h.iterations_to_converge(settle=5) == 20

    def test_never_converges(self):
        # Alternating values never stay near the final level.
        h = _history([1.0, 100.0] * 20)
        conv = h.iterations_to_converge(tolerance=0.05, settle=10)
        assert conv == len(h)

    def test_short_history(self):
        h = _history([1.0, 2.0])
        assert h.iterations_to_converge(settle=10) == 2

    def test_noise_within_tolerance_counts_as_converged(self):
        rng = np.random.default_rng(0)
        values = list(100.0 + rng.normal(0, 1.0, size=50))
        h = _history(values)
        assert h.iterations_to_converge(tolerance=0.05, settle=10) == 0


class TestImprovement:
    def test_improvement_over(self):
        h = _history([100.0, 120.0])
        assert h.improvement_over(100.0) == pytest.approx(0.2)

    def test_non_positive_baseline_rejected(self):
        h = _history([1.0])
        with pytest.raises(ValueError):
            h.improvement_over(0.0)
