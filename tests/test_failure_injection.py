"""Failure injection: fault plans, resilient tuning, and chaos recovery.

The paper's testbed occasionally needed server restarts (§V); a production
tuner must survive measurements that crash.  These tests cover the whole
robustness stack:

* :mod:`repro.faults.plan` — declarative, JSON round-trippable schedules;
* :mod:`repro.faults.injector` — golden per-tick fault states, seeded
  transient streams that never depend on retry history;
* :mod:`repro.faults.backend` — node crashes remove capacity from the
  measured cluster (the §IV reconfiguration signal), degradations slow it;
* :class:`~repro.faults.resilience.ResiliencePolicy` — retry + virtual
  backoff, penalty/skip/substitute, quarantine, rollback;
* the chaos experiment — tuning through a mid-run node crash recovers
  throughput the do-nothing arm loses, bit-identically across reruns.
"""

import numpy as np
import pytest

from repro.cluster.topology import ClusterSpec
from repro.experiments import chaos
from repro.experiments.runner import ExperimentConfig
from repro.faults.backend import (
    ClusterOutageError,
    FaultyBackend,
    MeasurementTimeout,
    TransientMeasurementError,
    degrade_spec,
)
from repro.faults.injector import FaultInjector, FaultState
from repro.faults.plan import FaultEvent, FaultPlan
from repro.faults.resilience import ResiliencePolicy, backoff_delay
from repro.model.analytic import AnalyticBackend
from repro.model.base import Measurement, PerformanceBackend, Scenario
from repro.des.backend import SimulationBackend
from repro.tpcw.interactions import BROWSING_MIX
from repro.tuning.session import ClusterTuningSession, make_scheme
from repro.util.rng import spawn_rng


class CrashingBackend(PerformanceBackend):
    """Fails every ``period``-th measurement (simulating a wedged server)."""

    def __init__(self, inner: PerformanceBackend, period: int) -> None:
        self.inner = inner
        self.period = period
        self.calls = 0

    def measure(self, scenario, configuration, seed=0) -> Measurement:
        self.calls += 1
        if self.calls % self.period == 0:
            raise RuntimeError("measurement harness wedged")
        return self.inner.measure(scenario, configuration, seed)


class RandomCrashBackend(PerformanceBackend):
    """Fails each measurement independently with probability p."""

    def __init__(self, inner: PerformanceBackend, p: float, seed: int) -> None:
        self.inner = inner
        self.p = p
        self.rng = spawn_rng(seed, "crash")

    def measure(self, scenario, configuration, seed=0) -> Measurement:
        if self.rng.random() < self.p:
            raise RuntimeError("spurious failure")
        return self.inner.measure(scenario, configuration, seed)


class RecordingBackend(PerformanceBackend):
    """Records every configuration actually measured."""

    def __init__(self, inner: PerformanceBackend) -> None:
        self.inner = inner
        self.measured = []

    def measure(self, scenario, configuration, seed=0) -> Measurement:
        self.measured.append(configuration)
        return self.inner.measure(scenario, configuration, seed)


class GateBackend(PerformanceBackend):
    """Fails every measurement except an allow-listed configuration."""

    def __init__(self, inner: PerformanceBackend) -> None:
        self.inner = inner
        self.allowed = None  # None: everything allowed.

    def measure(self, scenario, configuration, seed=0) -> Measurement:
        if self.allowed is not None and configuration != self.allowed:
            raise RuntimeError("backend refuses this configuration")
        return self.inner.measure(scenario, configuration, seed)


def _scenario(proxies=1, apps=1, dbs=1, population=750):
    cluster = ClusterSpec.three_tier(proxies, apps, dbs)
    return Scenario(cluster=cluster, mix=BROWSING_MIX, population=population)


def _session(backend, on_measure_error="raise", seed=31, scenario=None, **kwargs):
    scenario = scenario or _scenario()
    return ClusterTuningSession(
        backend, scenario,
        scheme=make_scheme(scenario, "default"),
        seed=seed,
        on_measure_error=on_measure_error,
        **kwargs,
    )


class TestValidation:
    def test_bad_mode_rejected(self):
        with pytest.raises(ValueError):
            _session(AnalyticBackend(), "ignore")


class TestRaiseMode:
    def test_failure_propagates_by_default(self):
        backend = CrashingBackend(AnalyticBackend(), period=3)
        session = _session(backend, "raise")
        with pytest.raises(RuntimeError, match="wedged"):
            session.run(10)
        # The completed iterations were recorded.
        assert 0 < session.iterations < 10


class TestPenalizeMode:
    def test_run_completes_despite_failures(self):
        backend = CrashingBackend(AnalyticBackend(), period=5)
        session = _session(backend, "penalize")
        session.run(40)
        assert session.iterations == 40
        assert session.measure_failures == 8
        # Failed iterations are recorded at the worst performance seen so
        # far — never an artificial 0.0 (see test_penalty_is_worst_seen).
        assert all(r.performance > 0.0 for r in session.history)

    def test_failed_measurement_penalized_with_worst_seen(self):
        backend = CrashingBackend(AnalyticBackend(), period=2)
        session = _session(backend, "penalize")
        m = session.step()  # ok
        assert m.wips > 0
        first = m.wips
        m = session.step()  # crash
        assert m.wips == first  # worst (= only) observed performance
        assert m.error_rate == 1.0

    def test_tuning_still_improves_with_random_failures(self):
        inner = AnalyticBackend()
        backend = RandomCrashBackend(inner, p=0.10, seed=7)
        session = _session(backend, "penalize")
        baseline = ClusterTuningSession(
            inner,
            session.scenario,
            seed=31,
        ).measure_baseline(iterations=10).window_stats(0)
        session.run(120)
        best = session.history.best().performance
        assert best > baseline.mean * 1.05

    def test_best_configuration_never_a_crashed_one(self):
        backend = CrashingBackend(AnalyticBackend(), period=4)
        session = _session(backend, "penalize")
        session.run(30)
        assert session.history.best().performance > 0.0


# ---------------------------------------------------------------------------
# Fault plans
# ---------------------------------------------------------------------------

class TestFaultEventValidation:
    @pytest.mark.parametrize("kwargs", [
        dict(kind="explode", at=0, node="app0"),          # unknown kind
        dict(kind="crash", at=-1, node="app0"),           # negative tick
        dict(kind="crash", at=0),                         # node kinds need a node
        dict(kind="fail", at=0, node="app0"),             # measurement kinds take none
        dict(kind="degrade", at=0, node="db0"),           # degrade needs a factor
        dict(kind="degrade", at=0, node="db0", factor=0.0),
        dict(kind="degrade", at=0, node="db0", factor=1.5),
        dict(kind="crash", at=0, node="app0", factor=0.5),
        dict(kind="fail", at=0, count=0),                 # count >= 1
        dict(kind="flap", at=0, node="app0"),             # flap needs period/cycles
        dict(kind="flap", at=0, node="app0", period=0, cycles=1),
        dict(kind="flap", at=0, node="app0", period=2, cycles=0),
        dict(kind="crash", at=0, node="app0", period=2),  # only flap takes these
    ])
    def test_invalid_event_rejected(self, kwargs):
        with pytest.raises(ValueError):
            FaultEvent(**kwargs)

    def test_unknown_keys_rejected(self):
        with pytest.raises(ValueError, match="unknown fault event keys"):
            FaultEvent.from_dict({"kind": "crash", "at": 1, "node": "a", "when": 2})

    def test_missing_field_rejected(self):
        with pytest.raises(ValueError, match="missing field"):
            FaultEvent.from_dict({"kind": "crash"})


class TestFaultPlan:
    def _plan(self):
        return FaultPlan(
            events=(
                FaultEvent("crash", 3, node="app0"),
                FaultEvent("recover", 7, node="app0"),
                FaultEvent("degrade", 2, node="db0", factor=0.5),
                FaultEvent("fail", 5, count=2),
                FaultEvent("flap", 10, node="proxy1", period=2, cycles=2),
            ),
            seed=42,
            transient_rate=0.1,
        )

    def test_json_round_trip_is_identity(self):
        plan = self._plan()
        assert FaultPlan.from_json(plan.to_json()) == plan

    def test_save_load_round_trip(self, tmp_path):
        plan = self._plan()
        path = tmp_path / "plan.json"
        plan.save(path)
        assert FaultPlan.load(path) == plan

    def test_fingerprint_ignores_event_order(self):
        a = FaultPlan(events=(
            FaultEvent("crash", 3, node="app0"),
            FaultEvent("recover", 7, node="app0"),
        ))
        b = FaultPlan(events=(
            FaultEvent("recover", 7, node="app0"),
            FaultEvent("crash", 3, node="app0"),
        ))
        assert a.fingerprint() == b.fingerprint()

    def test_fingerprint_depends_on_seed_and_rate(self):
        base = self._plan()
        assert base.fingerprint() != FaultPlan(
            events=base.events, seed=base.seed + 1,
            transient_rate=base.transient_rate,
        ).fingerprint()
        assert base.fingerprint() != FaultPlan(
            events=base.events, seed=base.seed, transient_rate=0.2,
        ).fingerprint()

    def test_horizon_covers_every_event(self):
        # flap at 10, period 2, cycles 2 -> last recover at 10 + 8.
        assert self._plan().horizon == 18
        assert FaultPlan().horizon == 0

    def test_nodes_sorted_unique(self):
        assert self._plan().nodes() == ("app0", "db0", "proxy1")

    def test_node_crash_constructor(self):
        plan = FaultPlan.node_crash("app0", at=5, recover_at=9, seed=3)
        assert plan.events == (
            FaultEvent("crash", 5, node="app0"),
            FaultEvent("recover", 9, node="app0"),
        )
        with pytest.raises(ValueError, match="recover_at"):
            FaultPlan.node_crash("app0", at=5, recover_at=5)

    def test_invalid_plan_rejected(self):
        with pytest.raises(ValueError):
            FaultPlan(seed=-1)
        with pytest.raises(ValueError):
            FaultPlan(transient_rate=1.0)
        with pytest.raises(ValueError, match="unknown fault plan keys"):
            FaultPlan.from_dict({"seed": 0, "faults": []})
        with pytest.raises(ValueError, match="invalid fault plan JSON"):
            FaultPlan.from_json("{nope")


# ---------------------------------------------------------------------------
# The injector: plan -> golden per-tick states
# ---------------------------------------------------------------------------

class TestFaultInjector:
    def test_golden_schedule(self):
        """The exact state sequence for a mixed plan, tick by tick."""
        plan = FaultPlan(events=(
            FaultEvent("fail", 1, count=2),
            FaultEvent("crash", 2, node="app0"),
            FaultEvent("degrade", 3, node="db0", factor=0.5),
            FaultEvent("recover", 4, node="app0"),
            FaultEvent("restore", 5, node="db0"),
            FaultEvent("flap", 6, node="app1", period=2, cycles=1),
        ))
        injector = FaultInjector(plan)
        down_a = frozenset({"app0"})
        down_b = frozenset({"app1"})
        slow = (("db0", 0.5),)
        assert injector.schedule(10) == [
            FaultState(),                                   # 0
            FaultState(fail=True),                          # 1
            FaultState(down=down_a, fail=True),             # 2
            FaultState(down=down_a, degraded=slow),         # 3
            FaultState(degraded=slow),                      # 4
            FaultState(),                                   # 5
            FaultState(down=down_b),                        # 6 flap: down
            FaultState(down=down_b),                        # 7
            FaultState(),                                   # 8 flap: back up
            FaultState(),                                   # 9
        ]
        assert plan.horizon == 10

    def test_transient_stream_is_seed_deterministic(self):
        plan = FaultPlan(seed=123, transient_rate=0.3)
        a = FaultInjector(plan).schedule(50)
        b = FaultInjector(plan).schedule(50)
        assert a == b
        assert any(s.fail for s in a) and not all(s.fail for s in a)

    def test_transient_verdict_independent_of_query_order(self):
        plan = FaultPlan(seed=9, transient_rate=0.5)
        forward = FaultInjector(plan)
        backward = FaultInjector(plan)
        ticks = list(range(20))
        want = [forward.state_at(t).fail for t in ticks]
        got = [backward.state_at(t).fail for t in reversed(ticks)][::-1]
        assert got == want

    def test_states_shared_by_content(self):
        # Identical states are the same object, so FaultyBackend's
        # degraded-cluster memo can key on them cheaply.
        injector = FaultInjector(FaultPlan(events=(
            FaultEvent("crash", 1, node="app0"),
            FaultEvent("recover", 3, node="app0"),
        )))
        assert injector.state_at(0) is injector.state_at(4)
        assert injector.state_at(1) is injector.state_at(2)

    def test_negative_tick_rejected(self):
        injector = FaultInjector(FaultPlan())
        with pytest.raises(ValueError):
            injector.state_at(-1)
        with pytest.raises(ValueError):
            injector.schedule(-1)

    def test_clean_and_degrades_cluster_flags(self):
        assert FaultState().clean
        assert not FaultState(fail=True).clean
        assert not FaultState(fail=True).degrades_cluster
        assert FaultState(down=frozenset({"a"})).degrades_cluster
        assert FaultState(degraded=(("a", 0.5),)).degrades_cluster


# ---------------------------------------------------------------------------
# FaultyBackend: faults applied to real measurements
# ---------------------------------------------------------------------------

class TestDegradeSpec:
    def test_scales_service_rates(self):
        spec = ClusterSpec.three_tier(1, 1, 1).placements[0].spec
        slow = degrade_spec(spec, 0.5)
        assert slow.cpu_speed == spec.cpu_speed * 0.5
        assert slow.disk_access_time == spec.disk_access_time / 0.5
        assert slow.disk_transfer_rate == spec.disk_transfer_rate * 0.5
        assert slow.nic_rate == spec.nic_rate * 0.5

    def test_factor_validated(self):
        spec = ClusterSpec.three_tier(1, 1, 1).placements[0].spec
        with pytest.raises(ValueError):
            degrade_spec(spec, 0.0)
        with pytest.raises(ValueError):
            degrade_spec(spec, 1.1)


class TestFaultyBackend:
    def _setup(self, plan, proxies=2, apps=2, dbs=1):
        scenario = _scenario(proxies, apps, dbs, population=800)
        backend = FaultyBackend(AnalyticBackend(), plan)
        return backend, scenario, scenario.cluster.default_configuration()

    def test_crash_removes_node_and_its_parameters(self):
        backend, scenario, cfg = self._setup(
            FaultPlan(events=(FaultEvent("crash", 0, node="app1"),))
        )
        clean = AnalyticBackend().measure(scenario, cfg)
        m = backend.measure(scenario, cfg)
        assert "app1" not in m.utilization
        assert "app0" in m.utilization
        # The surviving application node absorbs the crashed one's load —
        # the exact signal the reconfiguration algorithm watches.
        assert m.utilization["app0"].cpu > clean.utilization["app0"].cpu
        assert backend.stats.degraded_measurements == 1

    def test_recover_restores_capacity(self):
        backend, scenario, cfg = self._setup(
            FaultPlan.node_crash("app1", at=0, recover_at=1)
        )
        crashed = backend.measure(scenario, cfg)
        recovered = backend.measure(scenario, cfg)
        assert "app1" not in crashed.utilization
        assert "app1" in recovered.utilization
        assert recovered.wips == AnalyticBackend().measure(scenario, cfg).wips

    def test_degrade_slows_without_removing(self):
        backend, scenario, cfg = self._setup(
            FaultPlan(events=(FaultEvent("degrade", 0, node="db0", factor=0.4),))
        )
        clean = AnalyticBackend().measure(scenario, cfg)
        m = backend.measure(scenario, cfg)
        assert set(m.utilization) == set(clean.utilization)
        assert m.wips < clean.wips

    def test_fail_and_timeout_raise_before_measuring(self):
        plan = FaultPlan(events=(
            FaultEvent("fail", 0), FaultEvent("timeout", 1),
        ))
        scenario = _scenario(1, 1, 1)
        inner = RecordingBackend(AnalyticBackend())
        backend = FaultyBackend(inner, plan)
        cfg = scenario.cluster.default_configuration()
        with pytest.raises(TransientMeasurementError):
            backend.measure(scenario, cfg)
        with pytest.raises(MeasurementTimeout):
            backend.measure(scenario, cfg)
        assert inner.measured == []  # the inner backend was never touched
        assert backend.stats.transient_failures == 1
        assert backend.stats.timeouts == 1
        assert backend.measure(scenario, cfg).wips > 0  # tick 2 is clean

    def test_emptied_tier_is_an_outage(self):
        scenario = _scenario(1, 1, 1)
        backend = FaultyBackend(
            AnalyticBackend(),
            FaultPlan(events=(FaultEvent("crash", 0, node="proxy0"),)),
        )
        with pytest.raises(ClusterOutageError):
            backend.measure(scenario, scenario.cluster.default_configuration())
        assert backend.stats.outages == 1

    def test_advance_skips_a_fail_window(self):
        # Waiting out the window is exactly what retry backoff does.
        backend, scenario, cfg = self._setup(
            FaultPlan(events=(FaultEvent("fail", 0, count=3),)), 1, 1, 1
        )
        backend.advance(3)
        assert backend.tick == 3
        assert backend.measure(scenario, cfg).wips > 0
        with pytest.raises(ValueError):
            backend.advance(-1)

    def test_measure_batch_ticks_per_point(self):
        backend, scenario, cfg = self._setup(
            FaultPlan.node_crash("app1", at=1, recover_at=2)
        )
        points = backend.measure_batch(scenario, [(cfg, 0), (cfg, 1), (cfg, 2)])
        assert "app1" in points[0].utilization
        assert "app1" not in points[1].utilization
        assert "app1" in points[2].utilization
        assert backend.stats.measurements == 3

    def test_same_plan_same_trajectory(self):
        plan = FaultPlan(
            events=(FaultEvent("degrade", 2, node="db0", factor=0.6),),
            seed=4, transient_rate=0.2,
        )
        scenario = _scenario(2, 2, 1, population=800)
        cfg = scenario.cluster.default_configuration()

        def trajectory():
            backend = FaultyBackend(AnalyticBackend(), plan)
            out = []
            for seed in range(10):
                try:
                    out.append(backend.measure(scenario, cfg, seed=seed).wips)
                except TransientMeasurementError:
                    out.append(None)
            return out

        first = trajectory()
        assert trajectory() == first  # exact, including which ticks fail
        assert None in first


# ---------------------------------------------------------------------------
# Resilience policy units
# ---------------------------------------------------------------------------

class TestBackoff:
    def test_capped_exponential(self):
        assert [backoff_delay(a) for a in range(1, 7)] == [1, 2, 4, 8, 8, 8]
        assert backoff_delay(3, base=2, cap=5) == 5
        assert backoff_delay(1, base=0) == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            backoff_delay(0)
        with pytest.raises(ValueError):
            backoff_delay(1, base=-1)

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            ResiliencePolicy(max_retries=-1)
        with pytest.raises(ValueError):
            ResiliencePolicy(on_exhausted="shrug")
        with pytest.raises(ValueError):
            ResiliencePolicy(quarantine_after=-1)
        with pytest.raises(ValueError):
            ResiliencePolicy(rollback_after=-1)
        assert ResiliencePolicy().delay(2) == 2


# ---------------------------------------------------------------------------
# Resilient tuning sessions
# ---------------------------------------------------------------------------

def _faulty_session(plan, policy, steps=None, scenario=None, seed=31):
    scenario = scenario or _scenario()
    backend = FaultyBackend(AnalyticBackend(), plan)
    session = _session(backend, scenario=scenario, seed=seed, resilience=policy)
    if steps:
        session.run(steps)
    return session, backend


class TestResilientSession:
    def test_retry_waits_out_a_transient(self):
        plan = FaultPlan(events=(FaultEvent("fail", 2),))
        session, backend = _faulty_session(plan, ResiliencePolicy(), steps=6)
        stats = session.resilience_stats
        assert stats.failures == 1
        assert stats.retries == 1
        assert stats.backoff_ticks == 1
        assert stats.exhausted_steps == 0
        assert session.iterations == 6
        assert all(r.performance > 0.0 for r in session.history)

    def test_backoff_clears_a_multi_tick_window(self):
        # fail ticks 2..4: attempt 1 lands on tick 4 (still down), the
        # doubled backoff pushes attempt 2 past the window.
        plan = FaultPlan(events=(FaultEvent("fail", 2, count=3),))
        session, backend = _faulty_session(plan, ResiliencePolicy(), steps=4)
        stats = session.resilience_stats
        assert stats.retries == 2
        assert stats.backoff_ticks == 1 + 2
        assert stats.exhausted_steps == 0
        assert backend.stats.transient_failures == 2

    def test_penalty_is_worst_seen_not_zero(self):
        plan = FaultPlan(events=(FaultEvent("fail", 3),))
        policy = ResiliencePolicy(max_retries=0, rollback_after=0)
        session, _ = _faulty_session(plan, policy, steps=8)
        records = list(session.history)
        wips = [r.performance for r in records]
        # The failed step is recorded at the worst real throughput seen
        # before it — present, but never an artificial 0.0.
        assert wips[3] == min(wips[:3])
        assert all(w > 0.0 for w in wips)
        assert session.resilience_stats.penalties == 1

    def test_one_transient_cannot_become_best_direction(self):
        plan = FaultPlan(events=(FaultEvent("fail", 4),))
        policy = ResiliencePolicy(max_retries=0, rollback_after=0)
        session, _ = _faulty_session(plan, policy, steps=30)
        best = session.history.best()
        # The best record is a genuinely measured one, not the penalty.
        assert best.performance == max(r.performance for r in session.history)
        assert best.performance > min(r.performance for r in session.history)

    def test_skip_reasks_the_same_configuration(self):
        """A skipped step leaves the strategy untouched: the search sees
        exactly the clean run's configuration sequence."""
        scenario = _scenario()
        plan = FaultPlan(events=(FaultEvent("fail", 2),))
        policy = ResiliencePolicy(
            max_retries=0, on_exhausted="skip",
            quarantine_after=0, rollback_after=0,
        )
        faulty_inner = RecordingBackend(AnalyticBackend())
        faulty = _session(
            FaultyBackend(faulty_inner, plan),
            scenario=scenario, resilience=policy,
        )
        faulty.run(7)  # one step is skipped -> six real measurements
        clean_inner = RecordingBackend(AnalyticBackend())
        clean = _session(clean_inner, scenario=scenario)
        clean.run(6)
        assert faulty_inner.measured == clean_inner.measured
        assert [r.performance for r in faulty.history] == \
            [r.performance for r in clean.history]
        assert faulty.resilience_stats.skips == 1

    def test_substitute_reports_last_good(self):
        plan = FaultPlan(events=(FaultEvent("fail", 2),))
        policy = ResiliencePolicy(
            max_retries=0, on_exhausted="substitute",
            quarantine_after=0, rollback_after=0,
        )
        session, _ = _faulty_session(plan, policy)
        session.run(2)
        last_good = list(session.history)[-1].performance
        m = session.step()  # the failing step
        assert m.wips == last_good
        assert list(session.history)[-1].performance == last_good
        assert session.resilience_stats.substitutions == 1

    def test_repeatedly_failing_configuration_is_quarantined(self):
        # Everything fails; with on_exhausted="skip" the same
        # configuration is re-asked until quarantine kicks in.
        plan = FaultPlan(events=(FaultEvent("fail", 0, count=50),))
        policy = ResiliencePolicy(
            max_retries=0, on_exhausted="skip",
            quarantine_after=2, rollback_after=0,
        )
        session, backend = _faulty_session(plan, policy, steps=4)
        stats = session.resilience_stats
        assert stats.quarantined >= 1
        assert stats.quarantine_hits >= 1
        # The quarantined step answered without wasting a measurement.
        assert backend.stats.measurements < 4

    def test_sustained_failure_rolls_back_to_best(self):
        scenario = _scenario()
        gate = GateBackend(AnalyticBackend())
        policy = ResiliencePolicy(
            max_retries=0, quarantine_after=0, rollback_after=2,
        )
        session = _session(gate, scenario=scenario, resilience=policy)
        session.run(5)  # healthy warm-up
        best = session.history.best_configuration()
        gate.allowed = best  # from now on only the best config works
        for _ in range(10):
            session.step()
            if session.resilience_stats.rollbacks:
                break
        assert session.resilience_stats.rollbacks >= 1
        # The rollback deployed (measured) the best-known configuration.
        assert list(session.history)[-1].performance > 0.0

    def test_exhausted_raise_mode_without_policy_still_raises(self):
        plan = FaultPlan(events=(FaultEvent("fail", 0, count=3),))
        backend = FaultyBackend(AnalyticBackend(), plan)
        session = _session(backend, "raise")
        with pytest.raises(TransientMeasurementError):
            session.run(3)


# ---------------------------------------------------------------------------
# Exact trajectory determinism across backends
# ---------------------------------------------------------------------------

class TestTrajectoryDeterminism:
    def _run_analytic(self):
        scenario = _scenario(2, 2, 1, population=800)
        plan = FaultPlan.node_crash(
            "app1", at=3, recover_at=7, seed=9, transient_rate=0.08
        )
        backend = FaultyBackend(AnalyticBackend(), plan)
        session = _session(backend, scenario=scenario, resilience=ResiliencePolicy())
        wips = [session.step().wips for _ in range(12)]
        return wips, backend.stats.as_dict(), session.resilience_stats.as_dict()

    def test_analytic_trajectories_bit_identical(self):
        first = self._run_analytic()
        second = self._run_analytic()
        assert first == second  # exact ==, including every counter
        assert first[1]["degraded_measurements"] > 0

    def _run_des(self):
        scenario = _scenario(1, 1, 1, population=300)
        plan = FaultPlan(
            events=(
                FaultEvent("fail", 1),
                FaultEvent("degrade", 2, node="db0", factor=0.6),
                FaultEvent("restore", 4, node="db0"),
            ),
            seed=4, transient_rate=0.1,
        )
        backend = FaultyBackend(SimulationBackend(time_scale=0.04), plan)
        session = _session(backend, scenario=scenario, resilience=ResiliencePolicy())
        wips = [session.step().wips for _ in range(5)]
        return wips, backend.stats.as_dict(), session.resilience_stats.as_dict()

    def test_des_trajectories_bit_identical(self):
        first = self._run_des()
        second = self._run_des()
        assert first == second
        assert first[1]["degraded_measurements"] > 0


# ---------------------------------------------------------------------------
# The chaos experiment: fig7 under a node crash
# ---------------------------------------------------------------------------

class TestChaosExperiment:
    def test_resilient_arm_recovers_lost_throughput(self):
        result = chaos.run(ExperimentConfig(iterations=40, seed=5))
        # The crash costs the do-nothing arm real throughput...
        assert result.faulty_under_failure < result.clean_under_failure
        # ...which resilience + reconfiguration win back.
        assert result.recovered
        assert result.resilient_under_failure > result.faulty_under_failure
        assert result.time_to_recover is not None
        # Recovery came from an actual §IV move into the app tier.
        assert result.resilient.moves
        assert result.resilient.moves[0].decision.to_role.value == "app"
        # Rendering works.
        assert "Chaos" in result.to_table().render()
        assert "WIPS" in result.chart()

    def test_chaos_run_is_bit_identical(self):
        cfg = ExperimentConfig(iterations=30, seed=17)
        a = chaos.run(cfg)
        b = chaos.run(cfg)
        assert a.clean.wips == b.clean.wips
        assert a.faulty.wips == b.faulty.wips
        assert a.resilient.wips == b.resilient.wips
        assert a.resilient.fault_stats == b.resilient.fault_stats
        assert a.resilient.resilience_stats == b.resilient.resilience_stats
        assert a.plan.fingerprint() == b.plan.fingerprint()

    def test_default_plan_scales_with_iterations(self):
        plan = chaos.default_plan(100, seed=3)
        kinds = {e.kind: e.at for e in plan.events}
        assert kinds["crash"] == 40
        assert kinds["recover"] == 80
        assert plan.transient_rate > 0
