"""Failure injection: flaky backends and wedged measurements.

The paper's testbed occasionally needed server restarts (§V); a production
tuner must survive measurements that crash.  These tests drive a tuning
session against backends that fail deterministically or randomly and check
that tuning degrades gracefully instead of derailing.
"""

import numpy as np
import pytest

from repro.cluster.topology import ClusterSpec
from repro.model.analytic import AnalyticBackend
from repro.model.base import Measurement, PerformanceBackend, Scenario
from repro.tpcw.interactions import BROWSING_MIX
from repro.tuning.session import ClusterTuningSession, make_scheme
from repro.util.rng import spawn_rng


class CrashingBackend(PerformanceBackend):
    """Fails every ``period``-th measurement (simulating a wedged server)."""

    def __init__(self, inner: PerformanceBackend, period: int) -> None:
        self.inner = inner
        self.period = period
        self.calls = 0

    def measure(self, scenario, configuration, seed=0) -> Measurement:
        self.calls += 1
        if self.calls % self.period == 0:
            raise RuntimeError("measurement harness wedged")
        return self.inner.measure(scenario, configuration, seed)


class RandomCrashBackend(PerformanceBackend):
    """Fails each measurement independently with probability p."""

    def __init__(self, inner: PerformanceBackend, p: float, seed: int) -> None:
        self.inner = inner
        self.p = p
        self.rng = spawn_rng(seed, "crash")

    def measure(self, scenario, configuration, seed=0) -> Measurement:
        if self.rng.random() < self.p:
            raise RuntimeError("spurious failure")
        return self.inner.measure(scenario, configuration, seed)


def _session(backend, on_measure_error, seed=31):
    cluster = ClusterSpec.three_tier(1, 1, 1)
    scenario = Scenario(cluster=cluster, mix=BROWSING_MIX, population=750)
    return ClusterTuningSession(
        backend, scenario,
        scheme=make_scheme(scenario, "default"),
        seed=seed,
        on_measure_error=on_measure_error,
    )


class TestValidation:
    def test_bad_mode_rejected(self):
        with pytest.raises(ValueError):
            _session(AnalyticBackend(), "ignore")


class TestRaiseMode:
    def test_failure_propagates_by_default(self):
        backend = CrashingBackend(AnalyticBackend(), period=3)
        session = _session(backend, "raise")
        with pytest.raises(RuntimeError, match="wedged"):
            session.run(10)
        # The completed iterations were recorded.
        assert 0 < session.iterations < 10


class TestPenalizeMode:
    def test_run_completes_despite_failures(self):
        backend = CrashingBackend(AnalyticBackend(), period=5)
        session = _session(backend, "penalize")
        session.run(40)
        assert session.iterations == 40
        assert session.measure_failures == 8
        # Failed iterations are recorded at zero performance.
        zeros = sum(1 for r in session.history if r.performance == 0.0)
        assert zeros == 8

    def test_failed_measurement_reported_as_zero(self):
        backend = CrashingBackend(AnalyticBackend(), period=2)
        session = _session(backend, "penalize")
        m = session.step()  # ok
        assert m.wips > 0
        m = session.step()  # crash
        assert m.wips == 0.0
        assert m.error_rate == 1.0

    def test_tuning_still_improves_with_random_failures(self):
        inner = AnalyticBackend()
        backend = RandomCrashBackend(inner, p=0.10, seed=7)
        session = _session(backend, "penalize")
        baseline = ClusterTuningSession(
            inner,
            session.scenario,
            seed=31,
        ).measure_baseline(iterations=10).window_stats(0)
        session.run(120)
        best = session.history.best().performance
        assert best > baseline.mean * 1.05

    def test_best_configuration_never_a_crashed_one(self):
        backend = CrashingBackend(AnalyticBackend(), period=4)
        session = _session(backend, "penalize")
        session.run(30)
        assert session.history.best().performance > 0.0
