"""Tests for the Harmony server, client API and message protocol."""

import pytest

from repro.harmony.client import HarmonyClient
from repro.harmony.parameter import IntParameter
from repro.harmony.protocol import (
    ErrorReply,
    FetchReply,
    FetchRequest,
    RegisterReply,
    RegisterRequest,
    ReportReply,
    ReportRequest,
    UnregisterReply,
    UnregisterRequest,
)
from repro.harmony.server import HarmonyServer


def _params():
    return [
        IntParameter("a", 5, 0, 10),
        IntParameter("b", 100, 0, 1000, step=100),
    ]


class TestDirectApi:
    def test_register_fetch_report_cycle(self):
        server = HarmonyServer(seed=1)
        server.register("app", _params())
        cfg = server.fetch("app")
        assert set(cfg) == {"a", "b"}
        server.report("app", 42.0)
        assert server.history("app")[0].performance == 42.0

    def test_double_register_rejected(self):
        server = HarmonyServer()
        server.register("app", _params())
        with pytest.raises(ValueError):
            server.register("app", _params())

    def test_unknown_client_rejected(self):
        server = HarmonyServer()
        with pytest.raises(KeyError):
            server.fetch("ghost")
        with pytest.raises(KeyError):
            server.report("ghost", 1.0)

    def test_report_without_fetch_rejected(self):
        server = HarmonyServer()
        server.register("app", _params())
        with pytest.raises(RuntimeError):
            server.report("app", 1.0)

    def test_independent_sessions(self):
        server = HarmonyServer(seed=1)
        server.register("a", _params())
        server.register("b", _params())
        server.fetch("a")
        server.report("a", 10.0)
        assert len(server.history("a")) == 1
        assert len(server.history("b")) == 0

    def test_unregister_returns_best(self):
        server = HarmonyServer(seed=1)
        server.register("app", _params())
        cfg = server.fetch("app")
        server.report("app", 10.0)
        best = server.unregister("app")
        assert best == cfg
        assert "app" not in server.sessions

    def test_unknown_strategy_rejected(self):
        server = HarmonyServer()
        with pytest.raises(ValueError):
            server.register("app", _params(), strategy="quantum")

    def test_all_strategies_construct(self):
        server = HarmonyServer(seed=2)
        for i, strategy in enumerate(HarmonyServer.STRATEGIES):
            server.register(f"c{i}", _params(), strategy=strategy)
            server.fetch(f"c{i}")
            server.report(f"c{i}", 1.0)

    def test_start_configuration_respected(self):
        server = HarmonyServer()
        server.register("app", _params(), start={"a": 9, "b": 700})
        assert server.fetch("app") == {"a": 9, "b": 700}

    def test_tuning_improves_synthetic_metric(self):
        """End to end: the server should find a much better point."""
        server = HarmonyServer(seed=3)
        server.register("app", _params())

        def perf(cfg):
            return -((cfg["a"] - 8) ** 2) - ((cfg["b"] - 800) / 100.0) ** 2

        for _ in range(80):
            cfg = server.fetch("app")
            server.report("app", perf(cfg))
        best = server.sessions["app"].best_configuration()
        assert perf(best) > perf({"a": 5, "b": 100})


class TestMessageProtocol:
    def test_register_reply(self):
        server = HarmonyServer()
        reply = server.handle(RegisterRequest("c", tuple(_params())))
        assert isinstance(reply, RegisterReply)
        assert reply.dimension == 2

    def test_fetch_and_report(self):
        server = HarmonyServer()
        server.handle(RegisterRequest("c", tuple(_params())))
        fetch = server.handle(FetchRequest("c"))
        assert isinstance(fetch, FetchReply)
        report = server.handle(ReportRequest("c", 5.0))
        assert isinstance(report, ReportReply)
        assert report.iterations == 1

    def test_error_reply_instead_of_raise(self):
        server = HarmonyServer()
        reply = server.handle(FetchRequest("ghost"))
        assert isinstance(reply, ErrorReply)
        assert "ghost" in reply.error

    def test_non_finite_performance_rejected(self):
        server = HarmonyServer()
        server.handle(RegisterRequest("c", tuple(_params())))
        server.handle(FetchRequest("c"))
        reply = server.handle(ReportRequest("c", float("nan")))
        assert isinstance(reply, ErrorReply)

    def test_unregister_message(self):
        server = HarmonyServer()
        server.handle(RegisterRequest("c", tuple(_params())))
        server.handle(FetchRequest("c"))
        server.handle(ReportRequest("c", 1.0))
        reply = server.handle(UnregisterRequest("c"))
        assert isinstance(reply, UnregisterReply)
        assert reply.best is not None


class TestHarmonyClient:
    def test_minimal_application_loop(self):
        server = HarmonyServer(seed=4)
        client = HarmonyClient(server, "squid")
        dim = client.register(_params())
        assert dim == 2
        assert client.registered
        for i in range(10):
            cfg = client.fetch()
            client.report(float(-abs(cfg["a"] - 7)))
        assert client.iterations == 10
        best = client.unregister()
        assert best is not None
        assert not client.registered

    def test_fetch_before_register_raises(self):
        client = HarmonyClient(HarmonyServer(), "x")
        with pytest.raises(RuntimeError):
            client.fetch()

    def test_register_twice_raises(self):
        server = HarmonyServer()
        client = HarmonyClient(server, "x")
        client.register(_params())
        with pytest.raises(RuntimeError):
            client.register(_params())


class TestUnknownMessage:
    def test_unhandled_message_type_becomes_error_reply(self):
        from dataclasses import dataclass

        from repro.harmony.protocol import Message

        @dataclass(frozen=True)
        class FrobnicateRequest(Message):
            pass

        server = HarmonyServer()
        reply = server.handle(FrobnicateRequest("c"))
        assert isinstance(reply, ErrorReply)
        assert "FrobnicateRequest" in reply.error
