"""Tests for the TPC-W navigation (Markov session) model."""

import numpy as np
import pytest

from repro.tpcw.interactions import (
    BROWSING_MIX,
    Interaction,
    ORDERING_MIX,
    SHOPPING_MIX,
)
from repro.tpcw.navigation import SITE_STRUCTURE, NavigationModel


@pytest.fixture(scope="module", params=["browsing", "shopping", "ordering"])
def model(request):
    mixes = {"browsing": BROWSING_MIX, "shopping": SHOPPING_MIX,
             "ordering": ORDERING_MIX}
    return NavigationModel(mixes[request.param])


class TestConstruction:
    def test_transition_matrix_row_stochastic(self, model):
        p = model.transition_matrix
        assert (p >= 0).all()
        assert np.allclose(p.sum(axis=1), 1.0)

    def test_structure_weight_positive(self, model):
        """The feasibility bound must leave real structure in the chain."""
        assert model.structure_weight > 0.01

    def test_bad_structure_weight_rejected(self):
        with pytest.raises(ValueError):
            NavigationModel(BROWSING_MIX, structure_weight=1.0)

    def test_requested_weight_clipped_to_feasible(self):
        model = NavigationModel(BROWSING_MIX, structure_weight=0.999)
        # 0.999 is far beyond feasibility for these mixes.
        assert model.structure_weight < 0.999


class TestStationarity:
    def test_stationary_distribution_is_the_mix(self, model):
        pi = model.stationary_distribution()
        expected = np.array([model.mix.weight(i) for i in Interaction])
        assert np.allclose(pi, expected, atol=1e-9)

    def test_empirical_long_run_matches_mix(self):
        model = NavigationModel(SHOPPING_MIX)
        rng = np.random.default_rng(0)
        session = model.sample_session(rng, 60_000)
        for interaction in (Interaction.HOME, Interaction.SHOPPING_CART,
                            Interaction.SEARCH_RESULTS):
            share = session.count(interaction) / len(session)
            assert share == pytest.approx(
                SHOPPING_MIX.weight(interaction), abs=0.012
            )


class TestSessionStructure:
    def test_search_request_always_followed_by_results(self):
        """The deterministic structural edge must dominate transitions."""
        model = NavigationModel(BROWSING_MIX)
        rng = np.random.default_rng(1)
        followups = [
            model.next_interaction(Interaction.SEARCH_REQUEST, rng)
            for _ in range(3000)
        ]
        share = followups.count(Interaction.SEARCH_RESULTS) / len(followups)
        # structure_weight of the flow goes through the single edge; the
        # jump can also land on Search Results.
        assert share > model.structure_weight * 0.9

    def test_sessions_are_correlated_not_iid(self):
        """Consecutive-pair frequencies must deviate from independence —
        the point of navigation vs i.i.d. sampling."""
        model = NavigationModel(BROWSING_MIX)
        rng = np.random.default_rng(2)
        session = model.sample_session(rng, 40_000)
        pairs = sum(
            1
            for a, b in zip(session, session[1:])
            if a is Interaction.SEARCH_REQUEST and b is Interaction.SEARCH_RESULTS
        )
        observed = pairs / (len(session) - 1)
        independent = (
            BROWSING_MIX.weight(Interaction.SEARCH_REQUEST)
            * BROWSING_MIX.weight(Interaction.SEARCH_RESULTS)
        )
        assert observed > 3 * independent

    def test_sample_session_length_and_start(self):
        model = NavigationModel(ORDERING_MIX)
        rng = np.random.default_rng(3)
        session = model.sample_session(rng, 10, start=Interaction.HOME)
        assert len(session) == 10
        assert session[0] is Interaction.HOME
        with pytest.raises(ValueError):
            model.sample_session(rng, 0)

    def test_structure_covers_every_interaction(self):
        assert set(SITE_STRUCTURE) == set(Interaction)
        for dests in SITE_STRUCTURE.values():
            assert dests  # every page links somewhere
