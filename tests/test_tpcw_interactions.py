"""Tests for the TPC-W interactions and Table 1 mixes."""

import pytest

from repro.tpcw.interactions import (
    BROWSING_MIX,
    Interaction,
    InteractionCategory,
    ORDERING_MIX,
    SHOPPING_MIX,
    STANDARD_MIXES,
    WorkloadMix,
)


class TestInteractions:
    def test_fourteen_interactions(self):
        assert len(Interaction) == 14

    def test_category_split(self):
        browse = [i for i in Interaction if i.category is InteractionCategory.BROWSE]
        order = [i for i in Interaction if i.category is InteractionCategory.ORDER]
        assert len(browse) == 6
        assert len(order) == 8

    def test_specific_categories(self):
        assert Interaction.HOME.category is InteractionCategory.BROWSE
        assert Interaction.BUY_CONFIRM.category is InteractionCategory.ORDER
        assert Interaction.SHOPPING_CART.category is InteractionCategory.ORDER


class TestStandardMixes:
    @pytest.mark.parametrize("mix", [BROWSING_MIX, SHOPPING_MIX, ORDERING_MIX])
    def test_weights_sum_to_one(self, mix):
        assert sum(mix.weights.values()) == pytest.approx(1.0, abs=1e-9)

    def test_browse_order_splits_match_table1(self):
        """Table 1 header row: 95/5, 80/20, 50/50."""
        b = InteractionCategory.BROWSE
        o = InteractionCategory.ORDER
        assert BROWSING_MIX.category_fraction(b) == pytest.approx(0.95)
        assert BROWSING_MIX.category_fraction(o) == pytest.approx(0.05)
        assert SHOPPING_MIX.category_fraction(b) == pytest.approx(0.80)
        assert SHOPPING_MIX.category_fraction(o) == pytest.approx(0.20)
        assert ORDERING_MIX.category_fraction(b) == pytest.approx(0.50)
        assert ORDERING_MIX.category_fraction(o) == pytest.approx(0.50)

    def test_spot_values_from_table1(self):
        assert BROWSING_MIX.weight(Interaction.HOME) == pytest.approx(0.29)
        assert SHOPPING_MIX.weight(Interaction.SHOPPING_CART) == pytest.approx(0.116)
        assert ORDERING_MIX.weight(Interaction.BUY_CONFIRM) == pytest.approx(0.1018)
        assert ORDERING_MIX.weight(Interaction.ADMIN_CONFIRM) == pytest.approx(0.0011)

    def test_standard_mixes_registry(self):
        assert set(STANDARD_MIXES) == {"browsing", "shopping", "ordering"}
        assert STANDARD_MIXES["browsing"] is BROWSING_MIX


class TestWorkloadMixValidation:
    def test_missing_interaction_rejected(self):
        weights = {i: 1 / 13 for i in list(Interaction)[:-1]}
        with pytest.raises(ValueError, match="missing"):
            WorkloadMix("bad", weights)

    def test_sum_not_one_rejected(self):
        weights = {i: 0.1 for i in Interaction}
        with pytest.raises(ValueError, match="sum"):
            WorkloadMix("bad", weights)

    def test_negative_weight_rejected(self):
        weights = {i: 1 / 13 for i in list(Interaction)[:-1]}
        weights[Interaction.ADMIN_CONFIRM] = -(sum(weights.values()) - 1.0)
        total = sum(weights.values())
        # Construct sums to 1 but one weight negative.
        if weights[Interaction.ADMIN_CONFIRM] >= 0:
            weights[Interaction.ADMIN_CONFIRM] = -0.01
            weights[Interaction.HOME] = weights[Interaction.HOME] + 0.01
        with pytest.raises(ValueError):
            WorkloadMix("bad", weights)


class TestBlend:
    def test_endpoints(self):
        a = WorkloadMix.blend(BROWSING_MIX, ORDERING_MIX, 0.0)
        b = WorkloadMix.blend(BROWSING_MIX, ORDERING_MIX, 1.0)
        for i in Interaction:
            assert a.weight(i) == pytest.approx(BROWSING_MIX.weight(i))
            assert b.weight(i) == pytest.approx(ORDERING_MIX.weight(i))

    def test_midpoint_category_split(self):
        mid = WorkloadMix.blend(BROWSING_MIX, ORDERING_MIX, 0.5)
        # 95/5 blended with 50/50 -> 72.5/27.5.
        assert mid.category_fraction(InteractionCategory.BROWSE) == pytest.approx(0.725)

    def test_blend_is_valid_mix(self):
        mid = WorkloadMix.blend(SHOPPING_MIX, ORDERING_MIX, 0.3)
        assert sum(mid.weights.values()) == pytest.approx(1.0)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            WorkloadMix.blend(BROWSING_MIX, ORDERING_MIX, 1.5)

    def test_custom_name(self):
        mix = WorkloadMix.blend(BROWSING_MIX, ORDERING_MIX, 0.5, name="sale-day")
        assert mix.name == "sale-day"

    def test_blend_measurable(self):
        """A blended mix must flow through the whole measurement stack."""
        from repro.cluster.topology import ClusterSpec
        from repro.model.analytic import AnalyticBackend
        from repro.model.base import Scenario

        cluster = ClusterSpec.three_tier(1, 1, 1)
        mid = WorkloadMix.blend(BROWSING_MIX, ORDERING_MIX, 0.5)
        m = AnalyticBackend().measure(
            Scenario(cluster=cluster, mix=mid, population=400),
            cluster.default_configuration(), seed=1,
        )
        assert m.wips > 0
