"""Golden stream-stability tests for the BlockSampler RNG facade.

Every test compares the sampler against a *plain* generator seeded
identically and driven with scalar calls only: "stream-stable" means the
two produce bit-identical values under any interleaving of scalar draws,
site-directed blocks, distribution switches and flushes.
"""

import numpy as np
import pytest

from repro.util.rng import BlockSampler, spawn_rng

SEED = 1234


def _pair(**kwargs):
    """(reference generator, sampler over an identically seeded one)."""
    return (
        spawn_rng(SEED, "block-golden"),
        BlockSampler(spawn_rng(SEED, "block-golden"), **kwargs),
    )


class TestScalarStreams:
    def test_random_stream_identical_through_fill(self):
        # 200 consecutive draws cross the min_run threshold several
        # times, so both the scalar and the block-fill paths are hit.
        ref, sampler = _pair(block=64, min_run=8)
        expected = [float(ref.random()) for _ in range(200)]
        got = [sampler.random() for _ in range(200)]
        assert got == expected
        assert sampler.fills > 0

    def test_standard_exponential_stream_identical_through_fill(self):
        ref, sampler = _pair(block=64, min_run=8)
        expected = [float(ref.standard_exponential()) for _ in range(200)]
        got = [sampler.standard_exponential() for _ in range(200)]
        assert got == expected
        assert sampler.fills > 0

    def test_exponential_is_std_exp_times_scale(self):
        # numpy computes Exp(scale) as exactly standard_exponential()*scale;
        # the sampler relies on that identity to serve exponential() from
        # the unit-mean block.
        g1 = spawn_rng(SEED, "exp-identity")
        g2 = spawn_rng(SEED, "exp-identity")
        assert [g1.exponential(0.37) for _ in range(50)] == [
            g2.standard_exponential() * 0.37 for _ in range(50)
        ]
        ref, sampler = _pair(block=16, min_run=4)
        expected = [float(ref.exponential(2.5)) for _ in range(50)]
        got = [sampler.exponential(2.5) for _ in range(50)]
        assert got == expected

    def test_interleaved_distributions_rewind_to_scalar_stream(self):
        # Runs long enough to fill, then a switch mid-buffer: the rewind
        # must land the generator exactly where scalar calls would.
        schedule = [("u", 20), ("e", 20), ("u", 3), ("e", 3), ("u", 30)]
        ref, sampler = _pair(block=32, min_run=8)
        expected, got = [], []
        for kind, n in schedule:
            for _ in range(n):
                if kind == "u":
                    expected.append(float(ref.random()))
                    got.append(sampler.random())
                else:
                    expected.append(float(ref.standard_exponential()))
                    got.append(sampler.standard_exponential())
        assert got == expected
        assert sampler.rewinds > 0


class TestSiteDirectedBlocks:
    def test_block_matches_vectorized_reference(self):
        ref, sampler = _pair()
        np.testing.assert_array_equal(sampler.random(8), ref.random(8))
        np.testing.assert_array_equal(
            sampler.standard_exponential(5), ref.standard_exponential(5)
        )
        # The streams stay aligned for scalar draws afterwards.
        assert sampler.random() == float(ref.random())

    def test_block_served_from_live_buffer(self):
        # min_run=4 fills on the 4th scalar draw; the following
        # site-directed block is served from the same buffer, and the
        # final scalar draw (after the unconsumed tail is rewound) still
        # matches the pure-scalar reference.
        ref, sampler = _pair(block=8, min_run=4)
        expected = [float(ref.random()) for _ in range(4)]
        got = [sampler.random() for _ in range(4)]
        expected_block = ref.random(3)
        got_block = sampler.random(3)
        assert got == expected
        np.testing.assert_array_equal(got_block, expected_block)
        assert sampler.standard_exponential() == float(
            ref.standard_exponential()
        )

    def test_integers_passthrough_flushes_buffer(self):
        ref, sampler = _pair(block=8, min_run=2)
        expected = [float(ref.random()) for _ in range(3)]
        got = [sampler.random() for _ in range(3)]
        assert got == expected
        # integers() is not block-stable: it must first rewind the
        # buffered tail, then pass through to the raw generator.
        assert int(sampler.integers(10)) == int(ref.integers(10))
        assert sampler.random() == float(ref.random())


class TestModesAndMaintenance:
    def test_min_run_zero_is_pure_passthrough(self):
        ref, sampler = _pair(min_run=0)
        expected = [float(ref.random()) for _ in range(100)]
        got = [sampler.random() for _ in range(100)]
        assert got == expected
        assert sampler.fills == 0
        assert sampler.rewinds == 0
        assert sampler.scalar_draws == 100
        # Site-directed blocks still buffer nothing but stay stream-stable.
        np.testing.assert_array_equal(sampler.random(6), ref.random(6))

    def test_flush_restores_canonical_position(self):
        ref, sampler = _pair(block=16, min_run=2)
        for _ in range(5):
            ref.random()
            sampler.random()
        raw = sampler.flush()
        assert float(raw.random()) == float(ref.random())

    def test_stats_counters(self):
        _, sampler = _pair(block=16, min_run=2)
        for _ in range(4):
            sampler.random()
        stats = sampler.stats()
        assert set(stats) == {
            "scalar_draws", "block_draws", "fills", "rewinds"
        }
        assert stats["scalar_draws"] + stats["block_draws"] == 4

    @pytest.mark.parametrize(
        "kwargs", [{"block": 1}, {"min_run": 1}, {"min_run": -1}]
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            BlockSampler(spawn_rng(SEED), **kwargs)
