"""Tests for the search strategies (maximizing interface)."""

import numpy as np
import pytest

from repro.harmony.parameter import IntParameter, ParameterSpace
from repro.harmony.search import CoordinateDescent, RandomSearch, SimplexStrategy


def _space(dim=2):
    return ParameterSpace(
        [IntParameter(f"x{i}", 50, 0, 100) for i in range(dim)]
    )


def _drive(strategy, objective, budget):
    for _ in range(budget):
        cfg = strategy.ask()
        strategy.tell(cfg, objective(cfg))


class TestSimplexStrategy:
    def test_maximizes(self):
        s = SimplexStrategy(_space(), rng=np.random.default_rng(0))
        _drive(s, lambda c: -((c["x0"] - 70) ** 2 + (c["x1"] - 30) ** 2), 150)
        best_cfg, best_val = s.best
        assert abs(best_cfg["x0"] - 70) <= 5
        assert abs(best_cfg["x1"] - 30) <= 5

    def test_best_tracks_maximum(self):
        s = SimplexStrategy(_space(1))
        values = iter([5.0, 9.0, 3.0])
        for v in values:
            s.tell(s.ask(), v)
        assert s.best[1] == 9.0

    def test_initial_exploration_flag(self):
        s = SimplexStrategy(_space(3))
        assert s.in_initial_exploration
        for i in range(4):
            s.tell(s.ask(), float(i))
        assert not s.in_initial_exploration

    def test_non_finite_performance_handled(self):
        s = SimplexStrategy(_space(1))
        s.tell(s.ask(), float("-inf"))
        s.tell(s.ask(), 2.0)
        assert s.best[1] == 2.0


class TestRandomSearch:
    def test_first_point_is_default(self):
        space = _space()
        s = RandomSearch(space, rng=np.random.default_rng(0))
        assert s.ask() == space.default_configuration()

    def test_reproducible(self):
        space = _space()
        a = RandomSearch(space, rng=np.random.default_rng(5))
        b = RandomSearch(space, rng=np.random.default_rng(5))
        for _ in range(10):
            ca, cb = a.ask(), b.ask()
            assert ca == cb
            a.tell(ca, 0.0)
            b.tell(cb, 0.0)

    def test_points_are_legal(self):
        space = _space(3)
        s = RandomSearch(space, rng=np.random.default_rng(1))
        for _ in range(30):
            cfg = s.ask()
            space.validate(cfg)
            s.tell(cfg, 0.0)

    def test_eventually_finds_decent_point(self):
        space = _space(1)
        s = RandomSearch(space, rng=np.random.default_rng(2))
        _drive(s, lambda c: -abs(c["x0"] - 42), 100)
        assert abs(s.best[0]["x0"] - 42) <= 10


class TestCoordinateDescent:
    def test_step_multiplier_validation(self):
        with pytest.raises(ValueError):
            CoordinateDescent(_space(), step_multiplier=0)

    def test_hill_climbs_separable_objective(self):
        s = CoordinateDescent(_space(2), step_multiplier=8)
        _drive(s, lambda c: -((c["x0"] - 90) ** 2 + (c["x1"] - 10) ** 2), 120)
        best = s.best[0]
        assert best["x0"] >= 70
        assert best["x1"] <= 30

    def test_first_point_is_incumbent_default(self):
        space = _space()
        s = CoordinateDescent(space)
        assert s.ask() == space.default_configuration()

    def test_probes_differ_in_single_dimension(self):
        space = _space(2)
        s = CoordinateDescent(space, step_multiplier=4)
        incumbent = s.ask()
        s.tell(incumbent, 0.0)
        probe = s.ask()
        diffs = [k for k in space.names if probe[k] != incumbent[k]]
        assert len(diffs) == 1

    def test_all_points_legal(self):
        space = ParameterSpace([IntParameter("x", 5, 0, 10, step=5)])
        s = CoordinateDescent(space, step_multiplier=1)
        rng = np.random.default_rng(3)
        for _ in range(20):
            cfg = s.ask()
            space.validate(cfg)
            s.tell(cfg, float(rng.random()))

    def test_keeps_incumbent_when_probes_worse(self):
        space = _space(1)
        s = CoordinateDescent(space, step_multiplier=4)
        incumbent = s.ask()
        s.tell(incumbent, 100.0)
        # Both probes worse.
        for _ in range(2):
            cfg = s.ask()
            s.tell(cfg, 0.0)
        # Next cycle probes around the same incumbent.
        nxt = s.ask()
        diffs = [k for k in space.names if nxt[k] != incumbent[k]]
        assert len(diffs) == 1
