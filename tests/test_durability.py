"""Crash-safe checkpointing and the durable store (PR 9).

The hard guarantee under test: a run killed at *any* iteration and
resumed from its write-ahead journal produces results bit-identical to
the uninterrupted run — for plain sessions, for sessions under injected
cluster faults with a resilience policy, and for the fan-out experiment
drivers.  Alongside it: the frame format survives torn tails and detects
corruption, the disk-backed store quarantines damaged entries instead of
serving them, and the executor degrades shared → process → inline when
the fleet cannot be built.
"""

import json
import os

import pytest

from repro.cluster.topology import ClusterSpec
from repro.durability.framing import (
    FrameError,
    append_frame,
    frame,
    scan_file,
    scan_frames,
    write_frames,
)
from repro.durability.journal import (
    ExperimentJournal,
    JournalError,
    SessionJournal,
)
from repro.durability.diskstore import StorePersistence
from repro.experiments import fig4
from repro.experiments.runner import ExperimentConfig
from repro.faults.backend import FaultyBackend
from repro.faults.engine import (
    EngineFaultInjector,
    EngineFaultPlan,
    FleetUnavailableError,
)
from repro.faults.plan import FaultPlan
from repro.faults.resilience import ResiliencePolicy
from repro.model.analytic import AnalyticBackend
from repro.model.base import MemoizedBackend, Scenario
from repro.parallel.executor import ParallelExecutor
from repro.parallel.plan import RunSpec
from repro.tpcw.interactions import STANDARD_MIXES
from repro.tuning.session import ClusterTuningSession, make_scheme
from repro.util.serialization import atomic_write_json


# ----------------------------------------------------------------------
# Frame format
# ----------------------------------------------------------------------
class TestFraming:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "frames.bin"
        payloads = [b"alpha", b"", b"\x00" * 1000, b"omega"]
        with open(path, "wb") as fh:
            for p in payloads:
                append_frame(fh, p, fsync=False)
        scan = scan_file(path)
        assert scan.payloads == tuple(payloads)
        assert not scan.torn_tail
        assert scan.corrupt_frames == 0

    def test_torn_tail_tolerated_and_truncatable(self, tmp_path):
        path = tmp_path / "frames.bin"
        data = frame(b"one") + frame(b"two")
        cut = len(frame(b"one")) + 5  # mid-way through frame two
        path.write_bytes(data[:cut])
        scan = scan_file(path)
        assert scan.payloads == (b"one",)
        assert scan.torn_tail
        assert scan.valid_bytes == len(frame(b"one"))

    def test_mid_file_corruption_raises_in_strict_mode(self):
        data = bytearray(frame(b"one") + frame(b"two") + frame(b"three"))
        data[len(frame(b"one")) + 9] ^= 0xFF  # flip a payload byte of frame two
        with pytest.raises(FrameError):
            scan_frames(bytes(data))

    def test_bad_final_frame_reads_as_torn_tail(self):
        data = bytearray(frame(b"one") + frame(b"two"))
        data[len(frame(b"one")) + 9] ^= 0xFF
        scan = scan_frames(bytes(data))
        assert scan.payloads == (b"one",)
        assert scan.torn_tail

    def test_resync_mode_skips_and_counts(self):
        data = bytearray(frame(b"one") + frame(b"two") + frame(b"three"))
        data[len(frame(b"one")) + 9] ^= 0xFF
        scan = scan_frames(bytes(data), stop_on_error=False)
        assert scan.payloads == (b"one", b"three")
        assert scan.corrupt_frames == 1

    def test_write_frames_is_atomic_whole_file(self, tmp_path):
        path = tmp_path / "frames.bin"
        write_frames(path, [b"a", b"b"])
        assert scan_file(path).payloads == (b"a", b"b")
        assert not list(tmp_path.glob("*.tmp"))


# ----------------------------------------------------------------------
# Atomic result writes
# ----------------------------------------------------------------------
class TestAtomicWrites:
    def test_json_round_trip(self, tmp_path):
        path = tmp_path / "result.json"
        atomic_write_json(path, {"x": 1.5})
        assert json.loads(path.read_text()) == {"x": 1.5}
        assert path.read_text().endswith("\n")

    def test_failed_write_preserves_previous_content(self, tmp_path):
        path = tmp_path / "result.json"
        atomic_write_json(path, {"x": 1})
        with pytest.raises(TypeError):
            atomic_write_json(path, {"bad": object()})
        assert json.loads(path.read_text()) == {"x": 1}
        assert not list(tmp_path.glob("*.tmp"))  # temp file cleaned up


# ----------------------------------------------------------------------
# Session journal + kill/resume equivalence
# ----------------------------------------------------------------------
ITERATIONS = 10
HEADER = {"kind": "test-session", "seed": 3}


def _scenario() -> Scenario:
    return Scenario(
        cluster=ClusterSpec.three_tier(1, 1, 1),
        mix=STANDARD_MIXES["shopping"],
        population=200,
    )


def _session(journal=None, faults=None, resilience=None) -> ClusterTuningSession:
    backend = MemoizedBackend(AnalyticBackend())
    if faults is not None:
        backend = FaultyBackend(backend, faults)
    scenario = _scenario()
    return ClusterTuningSession(
        backend,
        scenario,
        scheme=make_scheme(scenario, "duplication"),
        seed=3,
        speculate=False,
        journal=journal,
        resilience=resilience,
    )


def _trajectory(session: ClusterTuningSession, steps: int) -> list:
    out = []
    for _ in range(steps):
        m = session.step()
        out.append((m.wips, m.raw_wips, m.error_rate, m.response_time))
    return out


def _fault_plan() -> FaultPlan:
    return FaultPlan.node_crash(
        "app0", at=3, recover_at=8, seed=0, transient_rate=0.2
    )


class TestSessionJournal:
    def test_fresh_refuses_existing_file(self, tmp_path):
        path = tmp_path / "run.journal"
        SessionJournal(path, HEADER).close()
        with pytest.raises(JournalError, match="--resume"):
            SessionJournal(path, HEADER)

    def test_resume_requires_file(self, tmp_path):
        with pytest.raises(JournalError, match="no journal at"):
            SessionJournal(tmp_path / "missing.journal", HEADER, resume=True)

    def test_header_mismatch_names_the_keys(self, tmp_path):
        path = tmp_path / "run.journal"
        SessionJournal(path, HEADER).close()
        with pytest.raises(JournalError, match="header mismatch on: seed"):
            SessionJournal(path, {**HEADER, "seed": 4}, resume=True)

    def test_torn_tail_truncated_on_resume(self, tmp_path):
        path = tmp_path / "run.journal"
        journal = SessionJournal(path, HEADER)
        session = _session(journal=journal)
        _trajectory(session, 4)
        journal.close()
        with open(path, "ab") as fh:
            fh.write(b"\x00\x00\x01")  # torn partial frame at the tail
        resumed = SessionJournal(path, HEADER, resume=True)
        session = _session(journal=resumed)
        assert resumed.replaying
        _trajectory(session, 4)
        assert resumed.replayed == 4
        resumed.close()


class TestKillResumeEquivalence:
    """The acceptance criterion: SIGKILL at any k, resume, bit-identical."""

    @pytest.fixture(scope="class")
    def reference(self):
        return _trajectory(_session(), ITERATIONS)

    @pytest.fixture(scope="class")
    def faulty_reference(self):
        session = _session(
            faults=_fault_plan(), resilience=ResiliencePolicy(max_retries=1)
        )
        trajectory = _trajectory(session, ITERATIONS)
        return trajectory, session.runner.backend.stats.as_dict()

    @pytest.mark.parametrize("kill_at", [1, ITERATIONS // 2, ITERATIONS - 1])
    def test_clean_session(self, tmp_path, reference, kill_at):
        path = tmp_path / "run.journal"
        journal = SessionJournal(path, HEADER)
        head = _trajectory(_session(journal=journal), kill_at)
        journal.close()  # everything else is simply abandoned: SIGKILL

        journal = SessionJournal(path, HEADER, resume=True)
        trajectory = _trajectory(_session(journal=journal), ITERATIONS)
        assert journal.replayed == kill_at
        journal.close()
        assert head == reference[:kill_at]
        assert trajectory == reference  # exact float equality: bit-identical

    @pytest.mark.parametrize("kill_at", [1, ITERATIONS // 2, ITERATIONS - 1])
    def test_faulty_resilient_session(self, tmp_path, faulty_reference, kill_at):
        """Replay must restore the fault timeline too: injected failures,
        retries, and backoff advance identically after resume."""
        reference, reference_stats = faulty_reference
        path = tmp_path / "run.journal"
        journal = SessionJournal(path, HEADER)
        session = _session(
            journal=journal,
            faults=_fault_plan(),
            resilience=ResiliencePolicy(max_retries=1),
        )
        _trajectory(session, kill_at)
        journal.close()

        journal = SessionJournal(path, HEADER, resume=True)
        session = _session(
            journal=journal,
            faults=_fault_plan(),
            resilience=ResiliencePolicy(max_retries=1),
        )
        trajectory = _trajectory(session, ITERATIONS)
        journal.close()
        assert trajectory == reference
        assert session.runner.backend.stats.as_dict() == reference_stats


# ----------------------------------------------------------------------
# Experiment journal + driver resume
# ----------------------------------------------------------------------
class TestExperimentJournal:
    def test_put_get_round_trip(self, tmp_path):
        path = tmp_path / "exp.journal"
        journal = ExperimentJournal(path, {"experiment": "x"})
        journal.put(("a", 1), {"wips": 2.5}, {"hits": 1.0})
        journal.put(("a", 1), {"wips": 2.5}, {"hits": 1.0})  # idempotent
        journal.close()
        journal = ExperimentJournal(path, {"experiment": "x"}, resume=True)
        assert len(journal) == 1
        assert journal.get(("a", 1)) == ({"wips": 2.5}, {"hits": 1.0})
        assert journal.get("missing") is None
        journal.close()


class TestExperimentResume:
    @pytest.fixture(scope="class")
    def reduced(self):
        return ExperimentConfig(iterations=8, baseline_iterations=4)

    @pytest.fixture(scope="class")
    def reference(self, reduced):
        return json.dumps(fig4.run(reduced).canonical_dict(), sort_keys=True)

    def test_full_journal_then_resume(self, tmp_path, reduced, reference):
        path = tmp_path / "fig4.journal"
        journaled = fig4.run(
            ExperimentConfig(
                iterations=reduced.iterations,
                baseline_iterations=reduced.baseline_iterations,
                journal=str(path),
            )
        )
        assert json.dumps(journaled.canonical_dict(), sort_keys=True) == reference

        resumed = fig4.run(
            ExperimentConfig(
                iterations=reduced.iterations,
                baseline_iterations=reduced.baseline_iterations,
                journal=str(path),
                resume=True,
            )
        )
        assert json.dumps(resumed.canonical_dict(), sort_keys=True) == reference

    def test_truncated_journal_resume(self, tmp_path, reduced, reference):
        """A journal cut mid-frame (the on-disk state of a SIGKILL during
        a commit) resumes to the bit-identical result."""
        path = tmp_path / "fig4.journal"
        fig4.run(
            ExperimentConfig(
                iterations=reduced.iterations,
                baseline_iterations=reduced.baseline_iterations,
                journal=str(path),
            )
        )
        scan = scan_file(path)
        keep = 1 + (len(scan.payloads) - 1) // 2  # header + half the commits
        prefix = b"".join(frame(p) for p in scan.payloads[:keep])
        path.write_bytes(prefix + frame(scan.payloads[keep])[:7])  # torn tail
        resumed = fig4.run(
            ExperimentConfig(
                iterations=reduced.iterations,
                baseline_iterations=reduced.baseline_iterations,
                journal=str(path),
                resume=True,
            )
        )
        assert json.dumps(resumed.canonical_dict(), sort_keys=True) == reference

    def test_fresh_run_refuses_existing_journal(self, tmp_path, reduced):
        path = tmp_path / "fig4.journal"
        cfg = ExperimentConfig(
            iterations=reduced.iterations,
            baseline_iterations=reduced.baseline_iterations,
            journal=str(path),
        )
        fig4.run(cfg)
        with pytest.raises(JournalError, match="--resume"):
            fig4.run(cfg)


# ----------------------------------------------------------------------
# Durable store
# ----------------------------------------------------------------------
class TestStorePersistence:
    def test_flush_load_round_trip(self, tmp_path):
        store = StorePersistence(tmp_path / "store")
        store.flush({"a": 1, "b": (2.5, "x")})
        store.flush({"a": 1, "b": (2.5, "x"), "c": [3]})  # only c is new
        reloaded = StorePersistence(tmp_path / "store")
        assert reloaded.load() == {"a": 1, "b": (2.5, "x"), "c": [3]}
        stats = reloaded.stats()
        assert stats["segments"] == 2
        assert stats["quarantined"] == 0

    def test_corrupt_entry_quarantined_never_served(self, tmp_path):
        root = tmp_path / "store"
        store = StorePersistence(root)
        store.flush({"good": 1})
        store.flush({"good": 1, "bad": 2})
        segment = sorted(root.glob("segment-*.seg"))[-1]
        data = bytearray(segment.read_bytes())
        data[-3] ^= 0xFF  # flip a byte inside the last entry's payload
        segment.write_bytes(bytes(data))
        reloaded = StorePersistence(root)
        loaded = reloaded.load()
        assert loaded == {"good": 1}  # the bad entry is dropped, not served
        assert reloaded.stats()["quarantined"] >= 1

    def test_torn_write_quarantined_then_recoverable(self, tmp_path):
        root = tmp_path / "store"
        injector = EngineFaultInjector(EngineFaultPlan(torn_store_writes=(1,)))
        store = StorePersistence(root, injector=injector)
        store.flush({"k": 41})  # lands torn
        assert injector.stats.torn_writes == 1
        reloaded = StorePersistence(root)
        assert reloaded.load() == {}
        # The torn flush never marked the key persisted: a later flush
        # (post-crash restart) writes it again, intact this time.
        store2 = StorePersistence(root)
        store2.load()
        store2.flush({"k": 41})
        assert StorePersistence(root).load() == {"k": 41}

    def test_later_segments_win(self, tmp_path):
        root = tmp_path / "store"
        root.mkdir()
        write_frames(
            root / "segment-000001.seg",
            [json.dumps({"schema": "repro-store-segment/v1"}).encode()]
            + [_pickle_entry("k", 1)],
        )
        write_frames(
            root / "segment-000002.seg",
            [json.dumps({"schema": "repro-store-segment/v1"}).encode()]
            + [_pickle_entry("k", 2)],
        )
        assert StorePersistence(root).load() == {"k": 2}


def _pickle_entry(key, value):
    import pickle

    return pickle.dumps((key, value), protocol=pickle.HIGHEST_PROTOCOL)


# ----------------------------------------------------------------------
# Engine fault plans + degradation ladder
# ----------------------------------------------------------------------
def _probe(x):
    return x * 3


class TestEngineFaultPlan:
    def test_json_round_trip(self, tmp_path):
        plan = EngineFaultPlan(
            kill_worker_runs=(2,), build_failures=1, slow_runs=(3,),
            torn_store_writes=(1,),
        )
        path = tmp_path / "plan.json"
        plan.save(path)
        assert EngineFaultPlan.load(path) == plan
        assert EngineFaultPlan.from_json(plan.to_json()) == plan

    def test_validation(self):
        with pytest.raises(ValueError, match="1-based"):
            EngineFaultPlan(kill_worker_runs=(0,))
        with pytest.raises(ValueError, match="build_failures"):
            EngineFaultPlan(build_failures=-1)
        with pytest.raises(ValueError, match="both killed and slow"):
            EngineFaultPlan(kill_worker_runs=(1,), slow_runs=(1,))
        with pytest.raises(ValueError, match="unknown"):
            EngineFaultPlan.from_dict({"frobnicate": 1})

    def test_injector_ordinals(self):
        injector = EngineFaultInjector(
            EngineFaultPlan(kill_worker_runs=(2,), build_failures=1)
        )
        assert injector.on_build() is True
        assert injector.on_build() is False
        assert injector.on_pool_run() is None
        assert injector.on_pool_run() == "kill"
        assert injector.on_pool_run() is None


class TestDegradationLadder:
    def _specs(self):
        return [RunSpec(("p", i), _probe, {"x": i}) for i in range(4)]

    def test_shared_to_process_to_inline(self):
        injector = EngineFaultInjector(EngineFaultPlan(build_failures=2))
        executor = ParallelExecutor(2, engine="shared", faults=injector)
        results = executor.run(self._specs())
        assert executor.degradations == ["shared->process", "process->inline"]
        assert results == {("p", i): i * 3 for i in range(4)}
        assert injector.stats.degradations == executor.degradations

    def test_shared_degrades_once_when_pool_builds(self):
        injector = EngineFaultInjector(EngineFaultPlan(build_failures=1))
        executor = ParallelExecutor(2, engine="shared", faults=injector)
        results = executor.run(self._specs())
        assert executor.degradations == ["shared->process"]
        assert results == {("p", i): i * 3 for i in range(4)}

    def test_pool_worker_kill_degrades_to_inline(self):
        injector = EngineFaultInjector(EngineFaultPlan(kill_worker_runs=(1,)))
        executor = ParallelExecutor(2, engine="process", faults=injector)
        results = executor.run(self._specs())
        assert executor.degradations == ["process->inline"]
        assert results == {("p", i): i * 3 for i in range(4)}

    def test_no_faults_no_degradation(self):
        executor = ParallelExecutor(1, engine="inline")
        executor.run(self._specs())
        assert executor.degradations == []
