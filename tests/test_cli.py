"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main
from repro.util.serialization import load_configuration, load_history


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_defaults(self):
        args = build_parser().parse_args(["tune"])
        assert args.mix == "shopping"
        assert args.iterations == 100
        assert args.method == "default"

    def test_experiment_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "fig99"])


class TestBaseline:
    def test_prints_wips(self, capsys):
        rc = main(["baseline", "--mix", "browsing", "--population", "300",
                   "--repeats", "3"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "WIPS" in out
        assert "browsing" in out


class TestTune:
    def test_tunes_and_saves(self, tmp_path, capsys):
        best_path = tmp_path / "best.json"
        history_path = tmp_path / "run.jsonl"
        rc = main([
            "tune", "--mix", "browsing", "--iterations", "30",
            "--population", "750",
            "--save-best", str(best_path),
            "--save-history", str(history_path),
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "baseline:" in out and "best after 30 iterations" in out
        cfg = load_configuration(best_path)
        assert "proxy0.cache_mem" in cfg
        history = load_history(history_path)
        assert len(history) == 30

    def test_duplication_method_on_cluster(self, capsys):
        rc = main([
            "tune", "--method", "duplication", "--iterations", "10",
            "--proxies", "2", "--apps", "2", "--dbs", "2",
            "--population", "600",
        ])
        assert rc == 0

    def test_random_strategy(self, capsys):
        rc = main(["tune", "--strategy", "random", "--iterations", "10",
                   "--population", "400"])
        assert rc == 0


class TestSensitivity:
    def test_named_params(self, capsys):
        rc = main([
            "sensitivity", "--mix", "browsing", "--population", "750",
            "--params", "proxy0.cache_mem,proxy0.cache_swap_low",
            "--points", "3", "--repeats", "1",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "cache_mem" in out and "Effect size" in out


class TestExperiment:
    def test_table1(self, capsys):
        rc = main(["experiment", "table1"])
        assert rc == 0
        assert "Buy Confirm" in capsys.readouterr().out

    def test_fig5_small(self, capsys):
        rc = main(["experiment", "fig5", "--iterations", "20"])
        assert rc == 0
        assert "responsiveness" in capsys.readouterr().out


class TestValidate:
    def test_backends_agree(self, capsys):
        rc = main(["validate", "--population", "300", "--time-scale", "0.03"])
        out = capsys.readouterr().out
        assert "ratio" in out
        assert rc == 0


class TestFaultsCli:
    def test_chaos_is_a_known_experiment(self):
        args = build_parser().parse_args(["experiment", "chaos"])
        assert args.name == "chaos"
        assert args.resilience is True
        args = build_parser().parse_args(["experiment", "chaos", "--no-resilience"])
        assert args.resilience is False

    def test_tune_under_a_fault_plan(self, tmp_path, capsys):
        from repro.faults.plan import FaultEvent, FaultPlan

        plan_path = tmp_path / "plan.json"
        FaultPlan(
            events=(FaultEvent("fail", 3, count=2),), seed=1
        ).save(plan_path)
        rc = main([
            "tune", "--iterations", "12", "--population", "500",
            "--faults", str(plan_path), "--resilience",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "faults:" in out and "resilience:" in out
        assert "best after 12 iterations" in out

    def test_chaos_experiment_reports_recovery(self, capsys):
        rc = main(["experiment", "chaos", "--iterations", "30", "--seed", "5"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "WIPS under failure (resilient)" in out
        assert "time to recover" in out
        assert "resume bit-identical" in out
        assert "degradation ladder" in out


class TestDurabilityCli:
    ARGS = ["tune", "--mix", "shopping", "--iterations", "8",
            "--population", "400"]

    def test_tune_journal_then_resume_is_stdout_identical(
        self, tmp_path, capsys
    ):
        rc = main(list(self.ARGS))
        assert rc == 0
        plain = capsys.readouterr().out
        journal = tmp_path / "run.journal"
        rc = main(self.ARGS + ["--journal", str(journal)])
        assert rc == 0
        assert capsys.readouterr().out == plain
        rc = main(self.ARGS + ["--resume", str(journal)])
        assert rc == 0
        captured = capsys.readouterr()
        assert captured.out == plain
        assert "resumed from" in captured.err

    def test_fresh_run_refuses_an_existing_journal(self, tmp_path, capsys):
        journal = tmp_path / "run.journal"
        assert main(self.ARGS + ["--journal", str(journal)]) == 0
        capsys.readouterr()
        rc = main(self.ARGS + ["--journal", str(journal)])
        assert rc == 2
        assert "error:" in capsys.readouterr().err

    def test_resume_under_different_flags_fails_loudly(
        self, tmp_path, capsys
    ):
        journal = tmp_path / "run.journal"
        assert main(self.ARGS + ["--journal", str(journal)]) == 0
        capsys.readouterr()
        rc = main([
            "tune", "--mix", "browsing", "--iterations", "8",
            "--population", "400", "--resume", str(journal),
        ])
        assert rc == 2
        assert "error:" in capsys.readouterr().err

    def test_journal_rejected_for_non_fanout_experiment(
        self, tmp_path, capsys
    ):
        rc = main([
            "experiment", "chaos", "--journal", str(tmp_path / "c.journal"),
        ])
        assert rc == 2
        assert "fan-out" in capsys.readouterr().err


class TestScaleCli:
    def test_population_suffixes(self):
        args = build_parser().parse_args(["baseline", "--population", "2k"])
        assert args.population == 2000
        args = build_parser().parse_args(["baseline", "--population", "1m"])
        assert args.population == 1_000_000

    def test_population_rejects_garbage(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["baseline", "--population", "huge"])
        with pytest.raises(SystemExit):
            build_parser().parse_args(["baseline", "--population", "0"])

    def test_approximation_choice(self):
        args = build_parser().parse_args(
            ["baseline", "--approximation", "fluid"]
        )
        assert args.approximation == "fluid"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["baseline", "--approximation", "magic"])

    def test_exact_refuses_huge_population_fast(self, capsys):
        # Fail-fast guard: no hours-long exact solve, a clear error.
        with pytest.raises(SystemExit) as exc:
            main(["baseline", "--population", "1m",
                  "--approximation", "exact"])
        assert "refuses population" in str(exc.value)

    def test_scale_is_a_known_experiment(self):
        args = build_parser().parse_args(["experiment", "scale"])
        assert args.name == "scale"

    def test_engine_defaults_to_shared_for_fanout(self):
        from repro.cli import _resolve_engine

        assert _resolve_engine("fig4", None, 4) == "shared"
        assert _resolve_engine("table4", None, 2) == "shared"
        assert _resolve_engine("scale", None, 8) == "shared"
        # Serial runs and non-fan-out drivers keep the process pool.
        assert _resolve_engine("sensitivity", None, 1) == "process"
        assert _resolve_engine("fig5", None, 8) == "process"
        # An explicit --engine always wins.
        assert _resolve_engine("fig4", "process", 8) == "process"
        assert _resolve_engine("fig5", "shared", 1) == "shared"

    def test_baseline_with_fluid_approximation(self, capsys):
        rc = main(["baseline", "--population", "100k", "--repeats", "2"])
        assert rc == 0
        assert "N=100000" in capsys.readouterr().out
