"""Cross-cutting integration tests: public API surface, heterogeneous
hardware, backend physics sanity, end-to-end persistence."""

import importlib

import pytest

import repro
from repro.cluster.node import NodeSpec, Role
from repro.cluster.topology import ClusterSpec, NodePlacement
from repro.model.analytic import AnalyticBackend
from repro.model.base import Scenario
from repro.model.noise import NoiseModel
from repro.tpcw.interactions import BROWSING_MIX, ORDERING_MIX
from repro.util.units import GB


class TestPublicApi:
    def test_all_names_importable(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_subpackages_importable(self):
        for mod in (
            "repro.harmony", "repro.tpcw", "repro.cluster", "repro.model",
            "repro.des", "repro.tuning", "repro.analysis", "repro.sim",
            "repro.experiments", "repro.util", "repro.cli",
        ):
            importlib.import_module(mod)

    def test_harmony_all_importable(self):
        import repro.harmony as harmony

        for name in harmony.__all__:
            assert hasattr(harmony, name), name

    def test_version(self):
        assert repro.__version__ == "1.0.0"


class TestHeterogeneousHardware:
    def test_faster_cpu_raises_saturated_throughput(self):
        backend = AnalyticBackend(noise=NoiseModel(0.0, 0.0, 0.0))
        pop = 1200
        slow = ClusterSpec.three_tier(1, 1, 1)
        fast_app = ClusterSpec(
            [
                NodePlacement("proxy0", Role.PROXY),
                NodePlacement("app0", Role.APP, NodeSpec(cpu_speed=2.0)),
                NodePlacement("db0", Role.DB),
            ]
        )
        w_slow = backend.measure(
            Scenario(cluster=slow, mix=ORDERING_MIX, population=pop),
            slow.default_configuration(), seed=1,
        )
        w_fast = backend.measure(
            Scenario(cluster=fast_app, mix=ORDERING_MIX, population=pop),
            fast_app.default_configuration(), seed=1,
        )
        # Ordering is app-bound, so a 2x app CPU must help materially.
        assert w_fast.wips > w_slow.wips * 1.1
        assert w_fast.utilization["app0"].cpu < w_slow.utilization["app0"].cpu

    def test_more_memory_relieves_pressure(self):
        backend = AnalyticBackend(noise=NoiseModel(0.0, 0.0, 0.0))
        small = ClusterSpec.three_tier(1, 1, 1)
        big_db = ClusterSpec(
            [
                NodePlacement("proxy0", Role.PROXY),
                NodePlacement("app0", Role.APP),
                NodePlacement("db0", Role.DB, NodeSpec(memory_bytes=4 * GB)),
            ]
        )
        # A memory-hungry database configuration.
        hungry = {
            "db0.max_connections": 1000,
            "db0.join_buffer_size": 16777216,
            "db0.thread_stack": 1048576,
        }
        sc_small = Scenario(cluster=small, mix=ORDERING_MIX, population=600)
        sc_big = Scenario(cluster=big_db, mix=ORDERING_MIX, population=600)
        m_small = backend.measure(
            sc_small, small.default_configuration().replace(**hungry), seed=1
        )
        m_big = backend.measure(
            sc_big, big_db.default_configuration().replace(**hungry), seed=1
        )
        assert m_big.wips > m_small.wips

    def test_faster_disk_helps_browsing(self):
        backend = AnalyticBackend(noise=NoiseModel(0.0, 0.0, 0.0))
        pop = 900
        stock = ClusterSpec.three_tier(1, 1, 1)
        fast_disk = ClusterSpec(
            [
                NodePlacement(
                    "proxy0", Role.PROXY, NodeSpec(disk_access_time=2e-3)
                ),
                NodePlacement("app0", Role.APP),
                NodePlacement("db0", Role.DB),
            ]
        )
        w_stock = backend.measure(
            Scenario(cluster=stock, mix=BROWSING_MIX, population=pop),
            stock.default_configuration(), seed=1,
        ).wips
        w_fast = backend.measure(
            Scenario(cluster=fast_disk, mix=BROWSING_MIX, population=pop),
            fast_disk.default_configuration(), seed=1,
        ).wips
        assert w_fast > w_stock * 1.1  # browsing is proxy-disk bound


class TestEndToEndPersistence:
    def test_tune_save_reload_remeasure(self, tmp_path):
        """The operator workflow: tune, save best, reload, apply."""
        from repro.tuning.session import ClusterTuningSession, make_scheme
        from repro.util.serialization import (
            load_configuration,
            save_configuration,
        )

        cluster = ClusterSpec.three_tier(1, 1, 1)
        scenario = Scenario(cluster=cluster, mix=BROWSING_MIX, population=750)
        backend = AnalyticBackend()
        session = ClusterTuningSession(
            backend, scenario, scheme=make_scheme(scenario, "default"), seed=21
        )
        baseline = session.measure_baseline().window_stats(0).mean
        session.run(50)
        best = session.best_configuration()
        path = tmp_path / "best.json"
        save_configuration(best, path)

        reloaded = load_configuration(path)
        assert reloaded == best
        quiet = AnalyticBackend(noise=NoiseModel(0.0, 0.0, 0.0))
        applied = quiet.measure(scenario, reloaded, seed=99)
        assert applied.wips > baseline
