"""Tests for the WIPS meter, browser behaviour and interaction profiles."""

import numpy as np
import pytest

from repro.tpcw.browser import BrowserBehavior
from repro.tpcw.interactions import (
    BROWSING_MIX,
    Interaction,
    InteractionCategory,
)
from repro.tpcw.metrics import WipsMeter
from repro.tpcw.profiles import PROFILES, InteractionProfile


class TestWipsMeter:
    def test_basic_wips(self):
        m = WipsMeter()
        m.open_window(100.0)
        for _ in range(50):
            m.record_completion(Interaction.HOME)
        m.close_window(200.0)
        assert m.wips() == pytest.approx(0.5)

    def test_completions_outside_window_ignored(self):
        m = WipsMeter()
        m.record_completion(Interaction.HOME)  # before open
        m.open_window(0.0)
        m.record_completion(Interaction.HOME)
        m.close_window(10.0)
        m.record_completion(Interaction.HOME)  # after close
        assert m.completed == 1

    def test_error_rate(self):
        m = WipsMeter()
        m.open_window(0.0)
        m.record_completion(Interaction.HOME)
        m.record_error()
        m.record_error()
        m.record_error()
        m.close_window(1.0)
        assert m.error_rate() == pytest.approx(0.75)

    def test_category_rates(self):
        m = WipsMeter()
        m.open_window(0.0)
        m.record_completion(Interaction.HOME)  # browse
        m.record_completion(Interaction.BUY_CONFIRM)  # order
        m.record_completion(Interaction.BUY_REQUEST)  # order
        m.close_window(10.0)
        assert m.category_rate(InteractionCategory.BROWSE) == pytest.approx(0.1)
        assert m.category_rate(InteractionCategory.ORDER) == pytest.approx(0.2)

    def test_window_protocol_errors(self):
        m = WipsMeter()
        with pytest.raises(RuntimeError):
            m.close_window(1.0)
        m.open_window(0.0)
        with pytest.raises(RuntimeError):
            m.open_window(1.0)
        with pytest.raises(RuntimeError):
            m.duration  # still open
        with pytest.raises(ValueError):
            m.close_window(-1.0)

    def test_zero_duration_rejected(self):
        m = WipsMeter()
        m.open_window(5.0)
        m.close_window(5.0)
        with pytest.raises(ValueError):
            m.wips()


class TestBrowserBehavior:
    def test_validation(self):
        with pytest.raises(ValueError):
            BrowserBehavior(BROWSING_MIX, mean_think_time=0.0)
        with pytest.raises(ValueError):
            BrowserBehavior(BROWSING_MIX, mean_think_time=10.0, max_think_time=5.0)

    def test_think_times_truncated(self):
        b = BrowserBehavior(BROWSING_MIX, mean_think_time=7.0, max_think_time=70.0)
        rng = np.random.default_rng(0)
        samples = [b.next_think_time(rng) for _ in range(2000)]
        assert max(samples) <= 70.0
        assert min(samples) >= 0.0

    def test_effective_mean_matches_empirical(self):
        b = BrowserBehavior(BROWSING_MIX, mean_think_time=7.0, max_think_time=21.0)
        rng = np.random.default_rng(1)
        samples = [b.next_think_time(rng) for _ in range(60_000)]
        assert np.mean(samples) == pytest.approx(
            b.effective_mean_think_time, rel=0.02
        )

    def test_effective_mean_below_nominal(self):
        b = BrowserBehavior(BROWSING_MIX)
        assert b.effective_mean_think_time < b.mean_think_time

    def test_next_interaction_uses_mix(self):
        b = BrowserBehavior(BROWSING_MIX)
        sampler = b.sampler()
        rng = np.random.default_rng(2)
        seen = {b.next_interaction(rng, sampler) for _ in range(500)}
        assert Interaction.HOME in seen


class TestInteractionProfiles:
    def test_all_interactions_profiled(self):
        assert set(PROFILES) == set(Interaction)

    def test_validation(self):
        with pytest.raises(ValueError):
            InteractionProfile(
                static_objects=1, page_cacheable=1.5, app_cpu=0.01,
                db_queries=0, db_heavy_queries=0, db_writes=0, db_inserts=0,
                response_bytes=1, db_result_bytes=0,
            )
        with pytest.raises(ValueError):
            InteractionProfile(
                static_objects=-1, page_cacheable=0.5, app_cpu=0.01,
                db_queries=0, db_heavy_queries=0, db_writes=0, db_inserts=0,
                response_bytes=1, db_result_bytes=0,
            )

    def test_scaled(self):
        p = PROFILES[Interaction.HOME]
        s = p.scaled(2.0)
        assert s.app_cpu == pytest.approx(2 * p.app_cpu)
        assert s.page_cacheable == p.page_cacheable

    def test_buy_confirm_is_write_heavy(self):
        p = PROFILES[Interaction.BUY_CONFIRM]
        assert p.db_writes >= 1.0
        assert p.db_inserts >= 1.0
        assert p.page_cacheable == 0.0

    def test_home_is_mostly_cacheable(self):
        assert PROFILES[Interaction.HOME].page_cacheable >= 0.8

    def test_search_results_hit_the_database(self):
        p = PROFILES[Interaction.SEARCH_RESULTS]
        assert p.db_heavy_queries > 0.5
        assert p.page_cacheable <= 0.2
