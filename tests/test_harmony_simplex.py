"""Tests for the integer-adapted Nelder–Mead simplex."""

import numpy as np
import pytest

from repro.harmony.parameter import IntParameter, ParameterSpace
from repro.harmony.simplex import NelderMeadSimplex, SimplexOptions


def _space(dim=2, low=0, high=100, step=1):
    return ParameterSpace(
        [
            IntParameter(f"x{i}", (low + high) // 2, low, high, step)
            for i in range(dim)
        ]
    )


def _minimize(simplex, objective, budget):
    best = None
    for _ in range(budget):
        cfg = simplex.ask()
        val = objective(cfg)
        simplex.tell(cfg, val)
        if best is None or val < best:
            best = val
    return best


class TestOptionsValidation:
    def test_bad_coefficients_rejected(self):
        with pytest.raises(ValueError):
            SimplexOptions(alpha=0)
        with pytest.raises(ValueError):
            SimplexOptions(gamma=1.0)
        with pytest.raises(ValueError):
            SimplexOptions(rho=1.0)
        with pytest.raises(ValueError):
            SimplexOptions(sigma=0.0)
        with pytest.raises(ValueError):
            SimplexOptions(initial_scale=0.0)
        with pytest.raises(ValueError):
            SimplexOptions(damping_fraction=0.0)


class TestProtocol:
    def test_empty_space_rejected(self):
        with pytest.raises(ValueError):
            NelderMeadSimplex(ParameterSpace([]))

    def test_ask_is_stable_until_tell(self):
        s = NelderMeadSimplex(_space())
        assert s.ask() == s.ask()

    def test_tell_without_ask_rejected(self):
        s = NelderMeadSimplex(_space())
        with pytest.raises(RuntimeError):
            s.tell(_space().default_configuration(), 1.0)

    def test_tell_wrong_config_rejected(self):
        s = NelderMeadSimplex(_space())
        cfg = s.ask()
        wrong = cfg.replace(x0=cfg["x0"] + 1 if cfg["x0"] < 100 else cfg["x0"] - 1)
        with pytest.raises(ValueError):
            s.tell(wrong, 1.0)

    def test_initial_exploration_length(self):
        """The paper: tuning n parameters explores n+1 configurations first."""
        dim = 4
        s = NelderMeadSimplex(_space(dim))
        count = 0
        while s.in_initial_exploration:
            cfg = s.ask()
            s.tell(cfg, float(count))
            count += 1
        assert count == dim + 1

    def test_first_ask_is_start_configuration(self):
        space = _space()
        s = NelderMeadSimplex(space)
        assert s.ask() == space.default_configuration()

    def test_evaluations_counted(self):
        s = NelderMeadSimplex(_space())
        for i in range(5):
            s.tell(s.ask(), float(i))
        assert s.evaluations == 5

    def test_non_finite_value_treated_as_worst(self):
        s = NelderMeadSimplex(_space(1))
        s.tell(s.ask(), float("nan"))
        s.tell(s.ask(), 1.0)
        assert s.best is not None and s.best[1] == 1.0


class TestOptimization:
    def test_minimizes_1d_quadratic(self):
        space = ParameterSpace([IntParameter("x", 90, 0, 100)])
        s = NelderMeadSimplex(space, rng=np.random.default_rng(0))
        _minimize(s, lambda c: (c["x"] - 30) ** 2, 60)
        assert abs(s.best[0]["x"] - 30) <= 2

    def test_minimizes_2d_quadratic(self):
        space = _space(2)
        s = NelderMeadSimplex(space, rng=np.random.default_rng(1))
        _minimize(s, lambda c: (c["x0"] - 20) ** 2 + (c["x1"] - 80) ** 2, 150)
        assert abs(s.best[0]["x0"] - 20) <= 5
        assert abs(s.best[0]["x1"] - 80) <= 5

    def test_minimizes_coupled_objective(self):
        space = _space(3)
        s = NelderMeadSimplex(space, rng=np.random.default_rng(2))

        def rosenbrock_ish(c):
            x, y, z = c["x0"] / 100, c["x1"] / 100, c["x2"] / 100
            return (x - 0.5) ** 2 + 4 * (y - x) ** 2 + (z - 0.25) ** 2

        _minimize(s, rosenbrock_ish, 250)
        best = s.best[0]
        assert abs(best["x0"] - 50) <= 15
        assert abs(best["x1"] - 50) <= 20

    def test_optimum_on_boundary_reachable(self):
        space = ParameterSpace([IntParameter("x", 50, 0, 100)])
        s = NelderMeadSimplex(space, rng=np.random.default_rng(3))
        _minimize(s, lambda c: c["x"], 60)  # minimum at x=0
        assert s.best[0]["x"] <= 2

    def test_all_asks_within_bounds(self):
        space = _space(3, low=10, high=20)
        s = NelderMeadSimplex(space, rng=np.random.default_rng(4))
        rng = np.random.default_rng(5)
        for _ in range(100):
            cfg = s.ask()
            space.validate(cfg)  # raises if out of bounds / off grid
            s.tell(cfg, float(rng.random()))

    def test_simplex_diameter_shrinks(self):
        space = _space(2)
        s = NelderMeadSimplex(space, rng=np.random.default_rng(6))
        objective = lambda c: (c["x0"] - 40) ** 2 + (c["x1"] - 60) ** 2
        _minimize(s, objective, 30)
        early = s.simplex_diameter()
        _minimize(s, objective, 150)
        late = s.simplex_diameter()
        assert late < early

    def test_step_grid_respected(self):
        space = ParameterSpace([IntParameter("x", 50, 0, 100, step=10)])
        s = NelderMeadSimplex(space, rng=np.random.default_rng(7))
        for i in range(30):
            cfg = s.ask()
            assert cfg["x"] % 10 == 0
            s.tell(cfg, (cfg["x"] - 70) ** 2)


class TestDamping:
    def test_damping_limits_jump_to_bounds(self):
        """With damping, the first non-initial proposals stay away from the
        bounds even when the objective pulls hard toward them."""
        space = ParameterSpace([IntParameter("x", 500, 0, 1000)])
        plain = NelderMeadSimplex(space, rng=np.random.default_rng(8))
        damped = NelderMeadSimplex(
            space,
            options=SimplexOptions(damp_extremes=True, damping_fraction=0.3),
            rng=np.random.default_rng(8),
        )

        def drive(s, steps):
            maxi = 0
            for _ in range(steps):
                cfg = s.ask()
                maxi = max(maxi, cfg["x"])
                s.tell(cfg, -float(cfg["x"]))  # pull toward x=1000
            return maxi

        plain_max = drive(plain, 8)
        damped_max = drive(damped, 8)
        assert damped_max < plain_max

    def test_damped_still_reaches_optimum_eventually(self):
        space = ParameterSpace([IntParameter("x", 500, 0, 1000)])
        s = NelderMeadSimplex(
            space,
            options=SimplexOptions(damp_extremes=True, damping_fraction=0.5),
            rng=np.random.default_rng(9),
        )
        _minimize(s, lambda c: -c["x"], 80)
        assert s.best[0]["x"] >= 950
