"""Tests for the §IV reconfiguration algorithm."""

import pytest

from repro.cluster.node import Role
from repro.cluster.topology import ClusterSpec
from repro.model.base import Measurement, ResourceUtilization
from repro.tuning.reconfig import MoveDecision, ReconfigPolicy, Reconfigurator


def _measurement(utils: dict[str, tuple[float, float, float, float]],
                 diagnostics: dict[str, float] | None = None) -> Measurement:
    return Measurement(
        wips=100.0,
        raw_wips=100.0,
        error_rate=0.0,
        response_time=0.1,
        utilization={
            node: ResourceUtilization(cpu=c, disk=d, network=n, memory=m)
            for node, (c, d, n, m) in utils.items()
        },
        diagnostics=diagnostics or {},
    )


class TestPolicyValidation:
    def test_thresholds_ordered(self):
        with pytest.raises(ValueError):
            ReconfigPolicy(
                high_thresholds={"cpu": 0.4, "disk": 0.9, "network": 0.9,
                                 "memory": 0.9},
                low_thresholds={"cpu": 0.5, "disk": 0.4, "network": 0.4,
                                "memory": 0.7},
            )

    def test_missing_low_threshold(self):
        with pytest.raises(ValueError):
            ReconfigPolicy(
                high_thresholds={"cpu": 0.9, "gpu": 0.9},
                low_thresholds={"cpu": 0.4},
            )


class TestClassification:
    def test_overloaded_detection(self):
        r = Reconfigurator()
        m = _measurement({
            "app0": (0.95, 0.1, 0.1, 0.3),   # cpu over 0.85
            "proxy0": (0.2, 0.2, 0.2, 0.3),  # fine
        })
        assert r.overloaded(m) == ["app0"]

    def test_urgency_ordering_prefers_cpu(self):
        """Footnote 3: CPU overload outranks network overload."""
        r = Reconfigurator()
        m = _measurement({
            "a": (0.95, 0.1, 0.1, 0.3),  # cpu +0.10 over
            "b": (0.1, 0.1, 0.99, 0.3),  # network +0.14 over, lower weight
        })
        assert r.overloaded(m) == ["a", "b"]

    def test_underutilized_requires_all_resources_low(self):
        r = Reconfigurator()
        m = _measurement({
            "idle": (0.1, 0.1, 0.1, 0.3),
            "half": (0.1, 0.6, 0.1, 0.3),  # disk above LT
        })
        assert r.underutilized(m) == ["idle"]

    def test_memory_has_own_thresholds(self):
        r = Reconfigurator()
        m = _measurement({"n": (0.1, 0.1, 0.1, 0.95)})
        assert r.overloaded(m) == ["n"]


class TestEquation1:
    def test_db_moves_cost_more(self):
        cluster = ClusterSpec.three_tier(2, 2, 2)
        r = Reconfigurator()
        diag = {
            "proxy0.jobs": 4.0, "proxy0.service_time": 0.01,
            "db0.jobs": 4.0, "db0.service_time": 0.01,
        }
        m = _measurement(
            {n: (0.1, 0.1, 0.1, 0.3) for n in cluster.node_ids}, diag
        )
        assert r.equation1(m, cluster, "db0") > r.equation1(m, cluster, "proxy0")

    def test_sign_decides_immediacy(self):
        cluster = ClusterSpec.three_tier(2, 1, 1)
        policy = ReconfigPolicy(reconfig_cost=0.1)
        r = Reconfigurator(policy)
        # Long average processing time makes waiting expensive -> immediate.
        diag = {"proxy1.jobs": 10.0, "proxy1.service_time": 5.0}
        m = _measurement(
            {n: (0.1, 0.1, 0.1, 0.3) for n in cluster.node_ids}, diag
        )
        assert r.equation1(m, cluster, "proxy1") < 0


class TestDecide:
    def _cluster(self):
        return ClusterSpec.three_tier(4, 2, 2)

    def _ordering_like_measurement(self, cluster):
        """Apps overloaded, proxies idle, dbs moderate."""
        utils = {}
        for n in cluster.nodes_in(Role.APP):
            utils[n] = (0.97, 0.05, 0.1, 0.3)
        for n in cluster.nodes_in(Role.PROXY):
            utils[n] = (0.1, 0.2, 0.15, 0.2)
        for n in cluster.nodes_in(Role.DB):
            utils[n] = (0.4, 0.5, 0.1, 0.4)
        diag = {}
        for n in cluster.node_ids:
            diag[f"{n}.jobs"] = 2.0
            diag[f"{n}.service_time"] = 0.02
        return _measurement(utils, diag)

    def test_moves_idle_proxy_to_app_tier(self):
        cluster = self._cluster()
        r = Reconfigurator()
        decision = r.decide(cluster, self._ordering_like_measurement(cluster))
        assert decision is not None
        assert decision.from_role is Role.PROXY
        assert decision.to_role is Role.APP
        assert decision.relieves.startswith("app")

    def test_apply_returns_moved_cluster(self):
        cluster = self._cluster()
        r = Reconfigurator()
        decision = r.decide(cluster, self._ordering_like_measurement(cluster))
        moved = r.apply(cluster, decision)
        assert moved.tier_size(Role.APP) == 3
        assert moved.tier_size(Role.PROXY) == 3

    def test_no_move_when_nothing_overloaded(self):
        cluster = self._cluster()
        r = Reconfigurator()
        m = _measurement({n: (0.3, 0.3, 0.3, 0.3) for n in cluster.node_ids})
        assert r.decide(cluster, m) is None

    def test_no_move_when_no_donor(self):
        cluster = self._cluster()
        r = Reconfigurator()
        # Everything busy: L2 empty.
        m = _measurement({n: (0.95, 0.5, 0.5, 0.5) for n in cluster.node_ids})
        assert r.decide(cluster, m) is None

    def test_never_empties_a_tier(self):
        cluster = ClusterSpec.three_tier(1, 2, 1)
        r = Reconfigurator()
        utils = {
            "proxy0": (0.1, 0.1, 0.1, 0.2),  # idle, but last proxy
            "app0": (0.97, 0.1, 0.1, 0.3),
            "app1": (0.97, 0.1, 0.1, 0.3),
            "db0": (0.4, 0.4, 0.1, 0.4),
        }
        decision = r.decide(cluster, _measurement(utils))
        assert decision is None  # only candidate is the last proxy node

    def test_same_tier_candidates_excluded(self):
        cluster = ClusterSpec.three_tier(2, 2, 2)
        r = Reconfigurator()
        utils = {n: (0.3, 0.3, 0.3, 0.3) for n in cluster.node_ids}
        utils["app0"] = (0.97, 0.1, 0.1, 0.3)  # overloaded app
        utils["app1"] = (0.1, 0.1, 0.1, 0.2)   # idle app (same tier!)
        decision = r.decide(cluster, _measurement(utils))
        assert decision is None or decision.from_role is not Role.APP

    def test_expensive_db_not_chosen_over_cheap_proxy(self):
        cluster = ClusterSpec.three_tier(2, 2, 2)
        r = Reconfigurator()
        utils = {n: (0.3, 0.3, 0.3, 0.3) for n in cluster.node_ids}
        utils["app0"] = (0.97, 0.1, 0.1, 0.3)
        utils["app1"] = (0.97, 0.1, 0.1, 0.3)
        utils["proxy1"] = (0.1, 0.1, 0.1, 0.2)
        utils["db1"] = (0.1, 0.1, 0.1, 0.2)
        diag = {}
        for n in cluster.node_ids:
            diag[f"{n}.jobs"] = 3.0
            diag[f"{n}.service_time"] = 0.02
        decision = r.decide(cluster, _measurement(utils, diag))
        assert decision is not None
        # A proxy donor is far cheaper to move than a database node.
        assert decision.from_role is Role.PROXY


class TestMoveDecision:
    def test_immediate_flag(self):
        d = MoveDecision("n", Role.PROXY, Role.APP, "app0", cost=-1.0)
        assert d.immediate
        d2 = MoveDecision("n", Role.PROXY, Role.APP, "app0", cost=1.0)
        assert not d2.immediate
