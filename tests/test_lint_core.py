"""Core analyzer machinery: imports, noqa parsing, config, determinism."""

from __future__ import annotations

import ast
import json
from pathlib import Path

from repro.lint import (
    ALL_RULES,
    Analyzer,
    LintConfig,
    format_json,
    format_rules,
    format_text,
    load_config,
)
from repro.lint.config import _minimal_toml, find_root
from repro.lint.core import ImportMap, LintResult, parse_noqa


# ----------------------------------------------------------------------
# ImportMap
# ----------------------------------------------------------------------
def resolve(source: str, expr: str):
    imports = ImportMap()
    imports.visit(ast.parse(source))
    return imports.resolve(ast.parse(expr, mode="eval").body)


def test_import_map_resolves_aliases():
    assert resolve("import numpy as np", "np.random.rand") == "numpy.random.rand"
    assert resolve("import numpy", "numpy.random.rand") == "numpy.random.rand"
    assert (
        resolve("from numpy.random import default_rng", "default_rng")
        == "numpy.random.default_rng"
    )
    assert (
        resolve("from numpy import random as npr", "npr.shuffle")
        == "numpy.random.shuffle"
    )
    assert (
        resolve("from datetime import datetime", "datetime.now")
        == "datetime.datetime.now"
    )


def test_import_map_leaves_locals_unresolved():
    assert resolve("import numpy as np", "random.random") is None
    assert resolve("x = 1", "np.random.rand") is None
    # Relative imports never resolve (they cannot shadow numpy/stdlib).
    assert resolve("from . import random", "random.random") is None


# ----------------------------------------------------------------------
# noqa parsing
# ----------------------------------------------------------------------
def test_parse_noqa_forms():
    table = parse_noqa(
        "a = 1  # repro: noqa\n"
        "b = 2  # repro: noqa[RPL001]\n"
        "c = 3  # repro: noqa[RPL001, RPL004]\n"
        "d = 4  # REPRO: NOQA[rpl005]\n"
        "e = 5  # unrelated comment\n"
    )
    assert table[1] is None
    assert table[2] == frozenset({"RPL001"})
    assert table[3] == frozenset({"RPL001", "RPL004"})
    assert table[4] == frozenset({"RPL005"})
    assert 5 not in table


# ----------------------------------------------------------------------
# Config layer
# ----------------------------------------------------------------------
def test_lint_config_selection_logic():
    config = LintConfig(
        select=frozenset({"RPL001", "RPL003"}),
        ignore=frozenset({"RPL003"}),
        exclude=("tests/lint_fixtures/*",),
        per_file_ignores=(("src/repro/model/*.py", frozenset({"RPL001"})),),
    )
    assert config.rule_enabled("RPL001")
    assert not config.rule_enabled("RPL003")  # ignore beats select
    assert not config.rule_enabled("RPL002")  # not selected
    assert config.path_excluded("tests/lint_fixtures/rpl001_bad.py")
    assert not config.path_excluded("src/repro/cli.py")
    assert config.rule_ignored_for_path("RPL001", "src/repro/model/mva.py")
    assert not config.rule_ignored_for_path("RPL001", "src/repro/des/x.py")


def test_config_merged_layers_cli_options():
    base = LintConfig(ignore=frozenset({"RPL008"}))
    merged = base.merged(
        select=frozenset({"RPL001"}), ignore=frozenset({"RPL004"})
    )
    assert merged.select == frozenset({"RPL001"})
    assert merged.ignore == frozenset({"RPL004", "RPL008"})


def test_load_config_from_pyproject(tmp_path):
    (tmp_path / "pyproject.toml").write_text(
        "[tool.repro.lint]\n"
        'ignore = ["RPL004"]\n'
        'exclude = ["generated/*"]\n'
        "\n"
        "[tool.repro.lint.per-file-ignores]\n"
        '"src/legacy.py" = ["RPL001", "RPL005"]\n'
    )
    config = load_config(tmp_path)
    assert config.ignore == frozenset({"RPL004"})
    assert config.exclude == ("generated/*",)
    assert config.rule_ignored_for_path("RPL005", "src/legacy.py")
    assert config.select is None


def test_load_config_missing_pyproject(tmp_path):
    assert load_config(tmp_path) == LintConfig()


def test_find_root_walks_upward(tmp_path):
    (tmp_path / "pyproject.toml").write_text("[tool.repro.lint]\n")
    nested = tmp_path / "a" / "b"
    nested.mkdir(parents=True)
    assert find_root(nested) == tmp_path


def test_minimal_toml_fallback_parser():
    data = _minimal_toml(
        "# comment\n"
        "[tool.repro.lint]\n"
        'ignore = ["RPL004", "RPL008"]  # trailing comment\n'
        "enabled = true\n"
        "threshold = 3\n"
        'name = "value"\n'
        "\n"
        '[tool.repro.lint."per-file-ignores"]\n'
        '"src/a.py" = ["RPL001"]\n'
    )
    section = data["tool"]["repro"]["lint"]
    assert section["ignore"] == ["RPL004", "RPL008"]
    assert section["enabled"] is True
    assert section["threshold"] == 3
    assert section["name"] == "value"
    assert section["per-file-ignores"]["src/a.py"] == ["RPL001"]


# ----------------------------------------------------------------------
# Analyzer over real trees
# ----------------------------------------------------------------------
def test_lint_paths_respects_exclude_and_sorts(tmp_path):
    (tmp_path / "pyproject.toml").write_text(
        '[tool.repro.lint]\nexclude = ["skip/*"]\n'
    )
    good = tmp_path / "pkg"
    good.mkdir()
    (good / "b.py").write_text("import numpy as np\n_x = np.random.rand()\n")
    (good / "a.py").write_text("import random\n_y = random.random()\n")
    skipped = tmp_path / "skip"
    skipped.mkdir()
    (skipped / "c.py").write_text("import random\n_z = random.random()\n")

    analyzer = Analyzer(ALL_RULES, load_config(tmp_path))
    result = analyzer.lint_paths([tmp_path], tmp_path)
    assert result.files_checked == 2
    assert [f.path for f in result.findings] == ["pkg/a.py", "pkg/b.py"]
    assert not result.ok


def test_analyzer_rule_selection():
    source = (
        "import numpy as np\n"
        "def f(xs=[]):\n"
        "    return np.random.rand()\n"
    )
    everything = Analyzer(ALL_RULES).lint_source(source, path="src/repro/x.py")
    assert {f.rule for f in everything} == {"RPL001", "RPL005"}
    only_rng = Analyzer(
        ALL_RULES, LintConfig(select=frozenset({"RPL001"}))
    ).lint_source(source, path="src/repro/x.py")
    assert {f.rule for f in only_rng} == {"RPL001"}


# ----------------------------------------------------------------------
# Reporters
# ----------------------------------------------------------------------
def _demo_result() -> LintResult:
    analyzer = Analyzer(ALL_RULES)
    findings = analyzer.lint_source(
        "import numpy as np\n_x = np.random.rand()\n",
        path="src/repro/des/x.py",
    )
    return LintResult(findings=findings, files_checked=1)


def test_text_reporter_format():
    text = format_text(_demo_result())
    assert "src/repro/des/x.py:2:6: RPL001 [error]" in text
    assert text.endswith("1 finding in 1 file checked")
    clean = format_text(LintResult(findings=[], files_checked=3))
    assert clean == "0 findings in 3 files checked"


def test_json_reporter_schema():
    doc = json.loads(format_json(_demo_result()))
    assert doc["version"] == 1
    assert doc["summary"] == {
        "files_checked": 1,
        "findings": 1,
        "by_rule": {"RPL001": 1},
        "ok": False,
    }
    (finding,) = doc["findings"]
    assert set(finding) == {
        "rule", "severity", "path", "line", "col", "message", "phase",
    }
    assert finding["rule"] == "RPL001"
    assert finding["line"] == 2
    assert finding["phase"] == "static"
    # Byte-stable output for identical input.
    assert format_json(_demo_result()) == format_json(_demo_result())


def test_rules_listing_documents_every_rule():
    from repro.lint.sanitizer import RUNTIME_RULES

    listing = format_rules(ALL_RULES)
    for rule in ALL_RULES:
        assert rule.id in listing
        assert rule.name in listing
    # The runtime sanitizer family is self-documented alongside.
    for rule_id in RUNTIME_RULES:
        assert rule_id in listing


# ----------------------------------------------------------------------
# Family-prefix selection
# ----------------------------------------------------------------------
def test_family_prefix_select_and_ignore():
    config = LintConfig(select=frozenset({"RPL1"}))
    assert config.rule_enabled("RPL101")
    assert config.rule_enabled("RPL108")
    assert not config.rule_enabled("RPL001")
    config = LintConfig(ignore=frozenset({"RPL10"}))
    assert not config.rule_enabled("RPL104")
    assert config.rule_enabled("RPL001")
    # Exact ids still behave as exact ids.
    config = LintConfig(select=frozenset({"RPL101"}))
    assert config.rule_enabled("RPL101")
    assert not config.rule_enabled("RPL102")


def test_family_prefix_per_file_ignores():
    config = LintConfig(
        per_file_ignores=(
            ("src/repro/parallel/*.py", frozenset({"RPL1"})),
        )
    )
    assert config.rule_ignored_for_path("RPL103", "src/repro/parallel/engine.py")
    assert not config.rule_ignored_for_path("RPL003", "src/repro/parallel/engine.py")
    assert not config.rule_ignored_for_path("RPL103", "src/repro/cli.py")
