"""Tests for repro.util.rng: deterministic, independent random streams."""

import numpy as np
import pytest

from repro.util.rng import RngFactory, derive_seed, spawn_rng


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(42, "a", 1) == derive_seed(42, "a", 1)

    def test_label_changes_seed(self):
        assert derive_seed(42, "a") != derive_seed(42, "b")

    def test_parent_seed_changes_seed(self):
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_label_order_matters(self):
        assert derive_seed(42, "a", "b") != derive_seed(42, "b", "a")

    def test_no_label_collision_with_concatenation(self):
        # ("ab",) and ("a", "b") must not collide.
        assert derive_seed(42, "ab") != derive_seed(42, "a", "b")

    def test_64_bit_range(self):
        for seed in (0, 1, 2**63, 12345):
            value = derive_seed(seed, "x")
            assert 0 <= value < 2**64

    def test_int_like_labels(self):
        assert derive_seed(42, 1) != derive_seed(42, "1") or True  # repr-based
        assert derive_seed(42, 1) == derive_seed(42, 1)


class TestSpawnRng:
    def test_reproducible_stream(self):
        a = spawn_rng(7, "x").random(5)
        b = spawn_rng(7, "x").random(5)
        assert np.array_equal(a, b)

    def test_independent_streams(self):
        a = spawn_rng(7, "x").random(5)
        b = spawn_rng(7, "y").random(5)
        assert not np.array_equal(a, b)


class TestRngFactory:
    def test_rejects_negative_seed(self):
        with pytest.raises(ValueError):
            RngFactory(-1)

    def test_get_reproducible(self):
        f = RngFactory(3)
        assert f.get("a").random() == RngFactory(3).get("a").random()

    def test_get_fresh_generator_each_call(self):
        f = RngFactory(3)
        # Two calls give independent generator objects at the same state.
        g1, g2 = f.get("a"), f.get("a")
        assert g1 is not g2
        assert g1.random() == g2.random()

    def test_child_factory_differs_from_parent(self):
        f = RngFactory(3)
        assert f.child("c").get("a").random() != f.get("a").random()

    def test_child_deterministic(self):
        assert (
            RngFactory(3).child("c").seed == RngFactory(3).child("c").seed
        )

    def test_seed_property(self):
        assert RngFactory(9).seed == 9
