"""The parallel experiment engine and the determinism guarantee.

The engine's whole contract is that ``--jobs`` changes wall-clock time
and nothing else.  The determinism test here is the PR's hard
acceptance: a reduced Figure-4 run at ``jobs=1`` and ``jobs=4``
serializes to byte-identical JSON.
"""

import json

import pytest

from repro.experiments import fig4
from repro.experiments.runner import ExperimentConfig
from repro.parallel import ParallelExecutor, RunSpec, resolve_jobs


def double(x):
    return 2 * x


def fail(x):
    raise RuntimeError(f"boom {x}")


class TestRunSpec:
    def test_execute(self):
        assert RunSpec(key="k", fn=double, kwargs={"x": 21}).execute() == 42

    def test_rejects_lambda(self):
        with pytest.raises(ValueError, match="module-level"):
            RunSpec(key="k", fn=lambda: 1)

    def test_rejects_closure(self):
        def local():
            return 1

        with pytest.raises(ValueError, match="module-level"):
            RunSpec(key="k", fn=local)


class TestParallelExecutor:
    def test_resolve_jobs(self):
        assert resolve_jobs(1) == 1
        assert resolve_jobs(7) == 7
        assert resolve_jobs(None) >= 1
        assert resolve_jobs(0) == resolve_jobs(None)
        with pytest.raises(ValueError):
            resolve_jobs(-2)

    def test_serial_and_parallel_agree(self):
        specs = [
            RunSpec(key=("d", i), fn=double, kwargs={"x": i}) for i in range(6)
        ]
        serial = ParallelExecutor(jobs=1).run(specs)
        pooled = ParallelExecutor(jobs=3).run(specs)
        assert serial == pooled
        assert list(pooled) == [s.key for s in specs]  # submission order

    def test_duplicate_keys_rejected(self):
        spec = RunSpec(key="same", fn=double, kwargs={"x": 1})
        with pytest.raises(ValueError, match="duplicate"):
            ParallelExecutor(jobs=1).run([spec, spec])

    def test_empty_plan(self):
        assert ParallelExecutor(jobs=4).run([]) == {}

    def test_worker_exception_propagates(self):
        specs = [RunSpec(key="f", fn=fail, kwargs={"x": 1})]
        with pytest.raises(RuntimeError, match="boom"):
            ParallelExecutor(jobs=1).run(specs)
        with pytest.raises(RuntimeError, match="boom"):
            ParallelExecutor(jobs=2).run(specs)


class TestFig4Determinism:
    """The acceptance criterion: results bit-identical at every --jobs."""

    @pytest.fixture(scope="class")
    def reduced(self):
        return ExperimentConfig(iterations=8, baseline_iterations=4)

    def test_jobs_1_vs_4_byte_identical(self, reduced):
        serial = fig4.run(ExperimentConfig(
            iterations=reduced.iterations,
            baseline_iterations=reduced.baseline_iterations,
            jobs=1,
        ))
        pooled = fig4.run(ExperimentConfig(
            iterations=reduced.iterations,
            baseline_iterations=reduced.baseline_iterations,
            jobs=4,
        ))
        a = json.dumps(serial.canonical_dict(), sort_keys=True)
        b = json.dumps(pooled.canonical_dict(), sort_keys=True)
        assert a == b

    def test_no_cache_matches_cached(self, reduced):
        cached = fig4.run(ExperimentConfig(
            iterations=reduced.iterations,
            baseline_iterations=reduced.baseline_iterations,
            jobs=1,
            memoize=True,
        ))
        uncached = fig4.run(ExperimentConfig(
            iterations=reduced.iterations,
            baseline_iterations=reduced.baseline_iterations,
            jobs=1,
            memoize=False,
        ))
        assert json.dumps(cached.canonical_dict(), sort_keys=True) == json.dumps(
            uncached.canonical_dict(), sort_keys=True
        )
        assert cached.cache_stats is not None
        assert uncached.cache_stats is None

    def test_cache_stats_surfaced(self, reduced):
        result = fig4.run(reduced)
        assert result.cache_stats is not None
        assert result.cache_stats["solution_hits"] > 0
