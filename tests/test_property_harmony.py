"""Property-based tests (hypothesis) for the Harmony core data structures."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.harmony.parameter import Configuration, IntParameter, ParameterSpace
from repro.harmony.simplex import NelderMeadSimplex, SimplexOptions


@st.composite
def int_parameters(draw, name="p"):
    low = draw(st.integers(min_value=-1000, max_value=1000))
    span_steps = draw(st.integers(min_value=0, max_value=200))
    step = draw(st.integers(min_value=1, max_value=50))
    high = low + span_steps * step
    default_steps = draw(st.integers(min_value=0, max_value=span_steps))
    return IntParameter(name, low + default_steps * step, low, high, step)


@st.composite
def parameter_spaces(draw, max_dim=4):
    dim = draw(st.integers(min_value=1, max_value=max_dim))
    return ParameterSpace(
        [draw(int_parameters(name=f"p{i}")) for i in range(dim)]
    )


class TestParameterProperties:
    @given(int_parameters(), st.floats(allow_nan=False, allow_infinity=False,
                                       min_value=-1e7, max_value=1e7))
    def test_clamp_always_legal(self, param, value):
        assert param.is_legal(param.clamp(value))

    @given(int_parameters(), st.floats(min_value=-1e7, max_value=1e7,
                                       allow_nan=False))
    def test_clamp_idempotent(self, param, value):
        once = param.clamp(value)
        assert param.clamp(float(once)) == once

    @given(int_parameters())
    def test_clamp_of_legal_value_is_identity(self, param):
        for k in range(0, param.num_values, max(1, param.num_values // 7)):
            v = param.low + k * param.step
            assert param.clamp(float(v)) == v

    @given(int_parameters(), st.integers(min_value=0, max_value=2**32))
    def test_random_always_legal(self, param, seed):
        rng = np.random.default_rng(seed)
        assert param.is_legal(param.random(rng))

    @given(int_parameters())
    def test_extremeness_bounds(self, param):
        for k in range(0, param.num_values, max(1, param.num_values // 5)):
            v = param.low + k * param.step
            assert 0.0 <= param.extremeness(v) <= 1.0 + 1e-12

    @given(parameter_spaces(), st.integers(min_value=0, max_value=2**32))
    def test_from_vector_always_legal(self, space, seed):
        rng = np.random.default_rng(seed)
        lo = space.lower_bounds() - 100.0
        hi = space.upper_bounds() + 100.0
        vector = lo + rng.random(space.dimension) * (hi - lo)
        space.validate(space.from_vector(vector))

    @given(parameter_spaces(), st.integers(min_value=0, max_value=2**32))
    def test_vector_round_trip(self, space, seed):
        rng = np.random.default_rng(seed)
        cfg = space.random_configuration(rng)
        assert space.from_vector(space.to_vector(cfg)) == cfg

    @given(parameter_spaces())
    def test_default_is_legal(self, space):
        space.validate(space.default_configuration())


class TestConfigurationProperties:
    @given(st.dictionaries(st.text(min_size=1, max_size=8),
                           st.integers(-1000, 1000), min_size=1, max_size=6))
    def test_equal_configs_equal_hashes(self, values):
        a = Configuration(values)
        b = Configuration(dict(reversed(list(values.items()))))
        assert a == b
        assert hash(a) == hash(b)

    @given(st.dictionaries(st.text(min_size=1, max_size=8),
                           st.integers(-1000, 1000), min_size=2, max_size=6))
    def test_replace_changes_only_target(self, values):
        cfg = Configuration(values)
        key = sorted(values)[0]
        replaced = cfg.replace(**{key: values[key] + 1})
        assert replaced[key] == values[key] + 1
        for other in values:
            if other != key:
                assert replaced[other] == cfg[other]


class TestSimplexProperties:
    @settings(max_examples=25, deadline=None)
    @given(
        parameter_spaces(max_dim=3),
        st.integers(min_value=0, max_value=2**32),
        st.integers(min_value=1, max_value=40),
    )
    def test_asks_always_legal_under_random_feedback(self, space, seed, steps):
        """Whatever objective values come back, every proposed configuration
        is a legal point of the space — the paper's integer adaptation."""
        simplex = NelderMeadSimplex(space, rng=np.random.default_rng(seed))
        rng = np.random.default_rng(seed + 1)
        for _ in range(steps):
            cfg = simplex.ask()
            space.validate(cfg)
            simplex.tell(cfg, float(rng.normal()))

    @settings(max_examples=15, deadline=None)
    @given(
        parameter_spaces(max_dim=3),
        st.integers(min_value=0, max_value=2**32),
    )
    def test_damped_asks_always_legal(self, space, seed):
        simplex = NelderMeadSimplex(
            space,
            options=SimplexOptions(damp_extremes=True),
            rng=np.random.default_rng(seed),
        )
        rng = np.random.default_rng(seed + 1)
        for _ in range(25):
            cfg = simplex.ask()
            space.validate(cfg)
            simplex.tell(cfg, float(rng.normal()))

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=0, max_value=2**32))
    def test_best_never_worse_than_any_told_value(self, seed):
        space = ParameterSpace([IntParameter("x", 50, 0, 100)])
        simplex = NelderMeadSimplex(space, rng=np.random.default_rng(seed))
        rng = np.random.default_rng(seed + 1)
        told = []
        for _ in range(20):
            cfg = simplex.ask()
            value = float(rng.normal())
            told.append(value)
            simplex.tell(cfg, value)
        assert simplex.best[1] == min(told)
