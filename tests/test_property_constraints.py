"""Property-based tests for constraint repair."""

import numpy as np
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.harmony.constraints import ConstraintSet, OrderingConstraint
from repro.harmony.parameter import IntParameter, ParameterSpace


@st.composite
def constrained_spaces(draw):
    """A 2-parameter space plus an ordering constraint guaranteed to be
    satisfiable (the ranges overlap enough for the gap)."""
    low_a = draw(st.integers(min_value=-500, max_value=500))
    span_a = draw(st.integers(min_value=10, max_value=400))
    step_a = draw(st.integers(min_value=1, max_value=7))
    low_b = draw(st.integers(min_value=low_a - 50, max_value=low_a + 50))
    span_b = draw(st.integers(min_value=10, max_value=400))
    step_b = draw(st.integers(min_value=1, max_value=7))
    high_a = low_a + span_a * step_a
    high_b = low_b + span_b * step_b
    gap = draw(st.integers(min_value=0, max_value=5))
    # Satisfiability: there must exist a in A, b in B with a + gap <= b.
    if low_a + gap > high_b:
        gap = max(0, high_b - low_a)
    space = ParameterSpace(
        [
            IntParameter("a", low_a, low_a, high_a, step_a),
            IntParameter("b", low_b, low_b, high_b, step_b),
        ]
    )
    return space, ConstraintSet([OrderingConstraint("a", "b", min_gap=gap)])


class TestRepairProperties:
    @settings(max_examples=150, deadline=None)
    @given(constrained_spaces(), st.integers(min_value=0, max_value=2**32))
    def test_repair_feasible_and_legal(self, setup, seed):
        space, cs = setup
        rng = np.random.default_rng(seed)
        cfg = space.random_configuration(rng)
        try:
            repaired = cs.repair(space, cfg)
        except ValueError:
            # Unsatisfiable combos can slip through the generator's guard
            # when grids misalign; that is the documented failure mode.
            return
        space.validate(repaired)
        assert cs.satisfied(repaired)

    @settings(max_examples=80, deadline=None)
    @given(constrained_spaces(), st.integers(min_value=0, max_value=2**32))
    def test_repair_idempotent(self, setup, seed):
        space, cs = setup
        rng = np.random.default_rng(seed)
        cfg = space.random_configuration(rng)
        try:
            once = cs.repair(space, cfg)
        except ValueError:
            return
        assert cs.repair(space, once) == once

    @settings(max_examples=80, deadline=None)
    @given(constrained_spaces(), st.integers(min_value=0, max_value=2**32))
    def test_repair_noop_on_feasible(self, setup, seed):
        space, cs = setup
        rng = np.random.default_rng(seed)
        cfg = space.random_configuration(rng)
        if cs.satisfied(cfg):
            assert cs.repair(space, cfg) == cfg

    @settings(max_examples=40, deadline=None)
    @given(constrained_spaces(), st.integers(min_value=0, max_value=2**32))
    def test_simplex_with_constraints_stays_feasible(self, setup, seed):
        from repro.harmony.simplex import NelderMeadSimplex

        space, cs = setup
        # Skip genuinely unsatisfiable range combinations (disjoint grids).
        constraint = cs.constraints[0]
        assume(
            space[constraint.lesser].low + constraint.min_gap
            <= space[constraint.greater].high
        )
        simplex = NelderMeadSimplex(
            space, rng=np.random.default_rng(seed), constraints=cs
        )
        rng = np.random.default_rng(seed + 1)
        for _ in range(15):
            cfg = simplex.ask()
            assert cs.satisfied(cfg)
            space.validate(cfg)
            simplex.tell(cfg, float(rng.normal()))
