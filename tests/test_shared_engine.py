"""The shared execution engine: equivalence matrix, store, and gang tests.

The engine axis contract is the same as ``--jobs``: ``--engine`` changes
wall-clock time and cache topology, never numbers.  The matrix test here
is this PR's hard acceptance — one reduced Figure-4 workload serialized
to byte-identical JSON at every (engine, jobs) setting — plus DES-backed
plan equivalence, shared-store concurrency, and the vectorized gang.
"""

import json
import multiprocessing
import threading

import pytest

from repro.cluster.topology import ClusterSpec
from repro.des.backend import SimulationBackend
from repro.experiments import fig4
from repro.experiments.runner import ExperimentConfig, make_backend
from repro.model.base import Scenario
from repro.parallel import (
    ENGINES,
    ParallelExecutor,
    RunSpec,
    SharedEngine,
    SharedStore,
    plan_chunksize,
    resolve_engine,
)
from repro.parallel.executor import _max_tasks_per_child_kwargs
from repro.parallel.vector import SolveRendezvous, run_gang
from repro.tpcw.interactions import SHOPPING_MIX, STANDARD_MIXES
from repro.tuning.session import ClusterTuningSession
from repro.util.rng import derive_seed


@pytest.fixture()
def fresh_engine():
    """A cold SharedEngine singleton, torn down after the test."""
    SharedEngine.reset()
    yield
    SharedEngine.reset()


@pytest.fixture(scope="module", autouse=True)
def engine_teardown():
    """Never leak a fleet/manager into later test modules."""
    yield
    SharedEngine.reset()


def _probe_scenario():
    cluster = ClusterSpec.three_tier(1, 1, 1)
    scenario = Scenario(cluster=cluster, mix=SHOPPING_MIX, population=150)
    return cluster, scenario


def shared_measure(tag):
    """Spec: measure one fixed point through the shared-engine backend.

    Every spec measures the *same* (scenario, configuration, seed), so any
    worker after the first must be served by a cache level somewhere.
    ``tag`` only differentiates spec keys.
    """
    del tag
    backend = make_backend(ExperimentConfig(engine="shared"))
    cluster, scenario = _probe_scenario()
    return backend.measure(
        scenario, cluster.default_configuration(), seed=99
    ).wips


def memoized_probe(seed):
    """Spec: two identical measurements on a fresh memoized backend."""
    backend = make_backend(ExperimentConfig(seed=seed))
    cluster, scenario = _probe_scenario()
    cfg = cluster.default_configuration()
    first = backend.measure(scenario, cfg, seed=seed)
    second = backend.measure(scenario, cfg, seed=seed)
    assert first.wips == second.wips
    return first.wips


def des_probe(seed):
    """Spec: a short deterministic DES trajectory (no shared caches)."""
    backend = SimulationBackend(time_scale=0.04)
    cluster = ClusterSpec.three_tier(1, 1, 1)
    scenario = Scenario(cluster=cluster, mix=SHOPPING_MIX, population=120)
    cfg = cluster.default_configuration()
    return [
        backend.measure(scenario, cfg, seed=derive_seed(seed, i)).wips
        for i in range(2)
    ]


def tuning_trajectory(engine):
    """Spec: a short cluster-tuning run's full performance trajectory."""
    cfg = ExperimentConfig(iterations=6, baseline_iterations=2, engine=engine)
    backend = make_backend(cfg)
    cluster = ClusterSpec.three_tier(1, 1, 1)
    scenario = Scenario(
        cluster=cluster, mix=STANDARD_MIXES["shopping"], population=300
    )
    session = ClusterTuningSession(
        backend, scenario, seed=derive_seed(17, "traj")
    )
    session.run(cfg.iterations)
    return [r.performance for r in session.history.records]


class TestEngineAxis:
    def test_resolve_engine(self):
        assert resolve_engine(None) == "process"
        for engine in ENGINES:
            assert resolve_engine(engine) == engine
        with pytest.raises(ValueError, match="unknown engine"):
            resolve_engine("threads")

    def test_executor_rejects_unknown_engine(self):
        with pytest.raises(ValueError, match="unknown engine"):
            ParallelExecutor(jobs=1, engine="threads")

    def test_plan_chunksize(self):
        assert plan_chunksize(1, 8) == 1
        assert plan_chunksize(7, 2) == 1
        assert plan_chunksize(64, 2) == 8
        assert plan_chunksize(100, 4) == 6

    def test_max_tasks_per_child_dropped_on_fork(self):
        assert _max_tasks_per_child_kwargs(None) == {}
        kwargs = _max_tasks_per_child_kwargs(10)
        if multiprocessing.get_start_method(allow_none=True) == "fork":
            assert kwargs == {}
        else:
            assert kwargs in ({}, {"max_tasks_per_child": 10})


class TestEquivalenceMatrix:
    """Results bit-identical at every (engine, jobs) setting."""

    @pytest.fixture(scope="class")
    def baseline(self):
        result = fig4.run(
            ExperimentConfig(iterations=8, baseline_iterations=4)
        )
        return json.dumps(result.canonical_dict(), sort_keys=True)

    @pytest.mark.parametrize(
        "engine,jobs",
        [
            ("inline", 1),
            ("inline", 4),
            ("process", 4),
            ("shared", 1),
            ("shared", 4),
        ],
    )
    def test_fig4_matrix(self, baseline, engine, jobs, fresh_engine):
        result = fig4.run(
            ExperimentConfig(
                iterations=8, baseline_iterations=4, engine=engine, jobs=jobs
            )
        )
        assert json.dumps(result.canonical_dict(), sort_keys=True) == baseline

    def test_des_plans_agree_across_engines(self):
        specs = [
            RunSpec(key=("des", s), fn=des_probe, kwargs={"seed": s})
            for s in (3, 5)
        ]
        baseline = ParallelExecutor(jobs=1, engine="inline").run(specs)
        for engine, jobs in [("process", 2), ("shared", 1), ("shared", 2)]:
            assert ParallelExecutor(jobs=jobs, engine=engine).run(specs) == (
                baseline
            ), (engine, jobs)
        SharedEngine.reset()

    def test_trajectories_agree_across_engines(self, fresh_engine):
        baseline = tuning_trajectory("inline")
        assert tuning_trajectory("process") == baseline
        assert tuning_trajectory("shared") == baseline
        # Warm shared-engine rerun: served from the persistent caches,
        # still the exact same numbers.
        assert tuning_trajectory("shared") == baseline


class TestSharedCacheTopology:
    """Cross-run and cross-worker cache behavior of the shared engine."""

    def test_vectorized_gang_fuses_cold_solves(self, fresh_engine):
        fig4.run(
            ExperimentConfig(
                iterations=6, baseline_iterations=2, engine="shared", jobs=1
            )
        )
        stats = SharedEngine.instance().stats()
        assert stats["gang_batches"] >= 1
        assert stats["gang_max_width"] >= 2  # cross-spec fusion happened

    def test_fleet_workers_hit_migrated_store(self, fresh_engine):
        # Warm the store on the vectorized path (local dict)...
        warm = ParallelExecutor(jobs=1, engine="shared")
        warm.run([RunSpec(key="warm", fn=shared_measure, kwargs={"tag": -1})])
        # ...then spin up the fleet: attach migrates local entries, so every
        # cache-cold worker's first lookup is a cross-process store hit.
        pooled = ParallelExecutor(jobs=2, engine="shared")
        results = pooled.run(
            [
                RunSpec(key=("m", i), fn=shared_measure, kwargs={"tag": i})
                for i in range(2)
            ]
        )
        assert len(set(results.values())) == 1  # hits are bit-identical
        stats = pooled.cache_stats
        assert stats is not None
        assert (
            stats.get("measurement_shared_hits", 0)
            + stats.get("solution_shared_hits", 0)
        ) > 0

    def test_cross_run_hits_in_pooled_runs(self, fresh_engine):
        executor = ParallelExecutor(jobs=2, engine="shared")
        plan = [
            RunSpec(key=("m", i), fn=shared_measure, kwargs={"tag": i})
            for i in range(2)
        ]
        first = executor.run(plan)
        second = executor.run(plan)  # same fleet, one run later
        assert first == second
        stats = executor.cache_stats
        assert stats is not None
        assert stats.get("measurement_hits", 0) > 0

    def test_pooled_cache_stats_aggregated(self):
        # The satellite fix: a per-run process pool now reports the cache
        # traffic that happened inside its workers.
        executor = ParallelExecutor(jobs=2, engine="process")
        executor.run(
            [
                RunSpec(key=("p", s), fn=memoized_probe, kwargs={"seed": s})
                for s in (1, 2)
            ]
        )
        stats = executor.cache_stats
        assert stats is not None
        assert stats["measurement_hits"] >= 2  # one repeat hit per spec
        assert 0 < stats["measurement_hit_rate"] < 1

    def test_fig4_reports_cache_stats_when_pooled(self):
        result = fig4.run(
            ExperimentConfig(iterations=6, baseline_iterations=2, jobs=2)
        )
        assert result.cache_stats is not None
        assert result.cache_stats["solution_hits"] > 0


class TestSharedStore:
    def test_attach_migrates_and_is_idempotent(self):
        store = SharedStore()
        store.put(("sol", "a"), 1)
        remote: dict = {}
        store.attach(remote)
        assert remote == {("sol", "a"): 1}
        store.attach(remote)  # same mapping: no-op
        with pytest.raises(RuntimeError, match="already attached"):
            store.attach({})

    def test_counters(self):
        store = SharedStore()
        assert store.get(("sol", "x")) is None
        store.put(("sol", "x"), 42)
        assert store.get(("sol", "x")) == 42
        assert store.peek(("sol", "y")) is None  # peek: counter-free
        stats = store.stats()
        assert stats["hits"] == 1.0
        assert stats["misses"] == 1.0
        assert stats["entries"] == 1.0

    def test_size_guard_clears_wholesale(self):
        store = SharedStore(max_entries=100)
        for i in range(512):  # the guard checks every 512 puts
            store.put(("sol", i), i)
        assert len(store) == 0  # over budget at the check: cleared

    def test_concurrent_writers(self):
        """Threaded put/get storm: deterministic values, consistent counters."""
        store = SharedStore()
        errors: list = []

        def hammer(worker):
            try:
                for i in range(300):
                    key = ("sol", (worker + i) % 50)
                    store.put(key, key[1] * 2)  # deterministic per key
                    value = store.get(key)
                    if value != key[1] * 2:
                        errors.append((key, value))
            except Exception as exc:  # pragma: no cover - surfaced below
                errors.append(exc)

        threads = [
            threading.Thread(target=hammer, args=(w,)) for w in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert len(store) == 50
        assert all(store.peek(("sol", k)) == k * 2 for k in range(50))
        stats = store.stats()
        assert stats["hits"] == 4 * 300  # every get follows its own put
        assert stats["misses"] == 0

    def test_concurrent_writers_attached(self):
        """The same storm through a Manager proxy (the fleet's real path)."""
        manager = multiprocessing.Manager()
        try:
            store = SharedStore()
            store.attach(manager.dict())
            errors: list = []

            def hammer(worker):
                try:
                    for i in range(25):
                        key = ("meas", (worker + i) % 10)
                        store.put(key, key[1])
                        if store.get(key) != key[1]:
                            errors.append(key)
                except Exception as exc:  # pragma: no cover
                    errors.append(exc)

            threads = [
                threading.Thread(target=hammer, args=(w,)) for w in range(3)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert not errors
            assert len(store) == 10
        finally:
            manager.shutdown()


def _record_solve(batches):
    def solve(tasks, outer_budget):
        batches.append((len(tasks), outer_budget))
        return [("solved", task) for task in tasks]

    return solve


class TestSolveRendezvous:
    @pytest.fixture(autouse=True)
    def _sanitizer_off(self, monkeypatch):
        # These tests assert exact solve-call batching.  The runtime
        # sanitizer's RPL154 check deliberately re-solves every fused
        # group solo (its documented ~2x overhead), which would skew the
        # counts; the rendezvous+sanitizer interaction has its own tests
        # in test_sanitizer.py.
        monkeypatch.delenv("REPRO_SANITIZE", raising=False)

    def _gang(self, rendezvous, work):
        """Run ``work`` callables as registered gang member threads."""
        out: dict = {}

        def drive(i, fn):
            try:
                out[i] = fn()
            except BaseException as exc:
                out[i] = exc
            finally:
                rendezvous.leave()

        threads = [
            threading.Thread(target=drive, args=(i, fn), daemon=True)
            for i, fn in enumerate(work)
        ]
        for t in threads:
            rendezvous.register(t)
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        return out

    def test_fuses_concurrent_solves(self):
        batches: list = []
        rv = SolveRendezvous(_record_solve(batches))
        out = self._gang(
            rv, [lambda k=k: rv.solve([("task", k)]) for k in range(3)]
        )
        assert out == {k: [("solved", ("task", k))] for k in range(3)}
        assert batches == [(3, None)]  # one fused batch of width 3
        assert (rv.batches, rv.rows, rv.max_width) == (1, 3, 3)

    def test_groups_by_outer_budget(self):
        batches: list = []
        rv = SolveRendezvous(_record_solve(batches))
        out = self._gang(
            rv,
            [
                lambda: rv.solve([("a",)], outer_budget=None),
                lambda: rv.solve([("b",)], outer_budget=4),
                lambda: rv.solve([("c",)], outer_budget=4),
            ],
        )
        assert sorted(width for width, _ in batches) == [1, 2]
        assert out[1] == [("solved", ("b",))]

    def test_fused_failure_falls_back_per_group(self):
        calls: list = []

        def fragile(tasks, outer_budget):
            calls.append(len(tasks))
            if len(tasks) > 1:
                raise RuntimeError("fused batch too wide")
            return [("solved", task) for task in tasks]

        rv = SolveRendezvous(fragile)
        out = self._gang(
            rv, [lambda k=k: rv.solve([("task", k)]) for k in range(2)]
        )
        assert calls[0] == 2  # the fused attempt...
        assert sorted(calls[1:]) == [1, 1]  # ...re-solved per pending
        assert out == {k: [("solved", ("task", k))] for k in range(2)}

    def test_departed_members_do_not_block(self):
        batches: list = []
        rv = SolveRendezvous(_record_solve(batches))
        out = self._gang(
            rv,
            [
                lambda: "no solve needed",
                lambda: rv.solve([("only",)]),
            ],
        )
        assert out[0] == "no solve needed"
        assert out[1] == [("solved", ("only",))]

    def test_run_gang_matches_serial_and_restores_hook(self):
        class Host:
            _rendezvous = "sentinel"

        host = Host()
        specs = [
            RunSpec(key=("g", s), fn=des_probe, kwargs={"seed": s})
            for s in (1, 2)
        ]
        serial = {spec.key: spec.execute() for spec in specs}
        rv = SolveRendezvous(_record_solve([]))
        assert run_gang(specs, rv, attach_to=host) == serial
        assert host._rendezvous == "sentinel"  # save/restore, not clobber
