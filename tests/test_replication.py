"""Tests for the replication harness."""

import pytest

from repro.experiments import ExperimentConfig
from repro.experiments.replication import (
    Replication,
    replicate,
    replicate_fig4_improvements,
    replication_table,
)


class TestReplication:
    def test_needs_values(self):
        with pytest.raises(ValueError):
            Replication("x", ())

    def test_stats_and_sign(self):
        rep = Replication("x", (0.1, 0.2, 0.15))
        assert rep.stats.mean == pytest.approx(0.15)
        assert rep.all_positive
        assert not Replication("y", (0.1, -0.01)).all_positive


class TestReplicate:
    def test_runs_metric_per_seed(self):
        seen = []

        def metric(cfg):
            seen.append(cfg.seed)
            return float(cfg.seed)

        rep = replicate("m", metric, ExperimentConfig(iterations=1), [3, 5, 9])
        assert seen == [3, 5, 9]
        assert rep.values == (3.0, 5.0, 9.0)

    def test_needs_seeds(self):
        with pytest.raises(ValueError):
            replicate("m", lambda cfg: 0.0, ExperimentConfig(), [])


class TestFig4Replication:
    def test_browsing_improvement_sign_stable(self):
        """The headline claim must not depend on the seed."""
        cfg = ExperimentConfig(iterations=50, baseline_iterations=6)
        reps = replicate_fig4_improvements(cfg, seeds=[17, 99])
        assert set(reps) == {"browsing", "shopping", "ordering"}
        browsing = reps["browsing"]
        assert browsing.stats.count == 2
        assert browsing.all_positive
        # Ordering's improvement is smaller than browsing's in every run.
        for b, o in zip(browsing.values, reps["ordering"].values):
            assert o < b

    def test_table_renders(self):
        reps = {"demo": Replication("demo", (0.1, 0.12))}
        text = replication_table(reps).render()
        assert "demo" in text and "Sign-stable" in text
