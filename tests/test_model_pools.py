"""Tests for the M/M/c/K pool model."""

import math

import pytest

from repro.model.pools import mmck


def _mm1k_blocking(rho, k):
    """Closed form M/M/1/K blocking probability."""
    if rho == 1.0:
        return 1.0 / (k + 1)
    return (1 - rho) * rho**k / (1 - rho ** (k + 1))


class TestValidation:
    def test_bad_servers(self):
        with pytest.raises(ValueError):
            mmck(1.0, 1.0, 0, 1)

    def test_capacity_below_servers(self):
        with pytest.raises(ValueError):
            mmck(1.0, 1.0, 2, 1)

    def test_negative_rates(self):
        with pytest.raises(ValueError):
            mmck(-1.0, 1.0, 1, 1)


class TestZeroLoad:
    def test_no_arrivals(self):
        res = mmck(0.0, 1.0, 4, 8)
        assert res.blocking == 0.0
        assert res.wait == 0.0
        assert res.busy == 0.0


class TestMM1K:
    @pytest.mark.parametrize("rho", [0.3, 0.8, 1.5])
    @pytest.mark.parametrize("k", [1, 3, 10])
    def test_blocking_matches_closed_form(self, rho, k):
        res = mmck(arrival_rate=rho, holding_time=1.0, servers=1, capacity=k)
        assert res.blocking == pytest.approx(_mm1k_blocking(rho, k), rel=1e-9)

    def test_pure_loss_system(self):
        # M/M/1/1: blocking = rho / (1 + rho).
        res = mmck(2.0, 1.0, 1, 1)
        assert res.blocking == pytest.approx(2.0 / 3.0)
        assert res.wait == 0.0


class TestMMcK:
    def test_blocking_monotone_in_load(self):
        values = [
            mmck(lam, 1.0, 4, 10).blocking for lam in (1.0, 3.0, 5.0, 8.0)
        ]
        assert all(a <= b for a, b in zip(values, values[1:]))

    def test_blocking_decreases_with_capacity(self):
        values = [mmck(5.0, 1.0, 4, k).blocking for k in (4, 8, 16, 64)]
        assert all(a >= b for a, b in zip(values, values[1:]))

    def test_more_servers_less_waiting(self):
        few = mmck(3.0, 1.0, 4, 40)
        many = mmck(3.0, 1.0, 16, 40)
        assert many.wait < few.wait

    def test_utilization(self):
        res = mmck(1.0, 1.0, 2, 20)
        # Offered load 1 over 2 servers, negligible blocking => util ~0.5.
        assert res.utilization == pytest.approx(0.5, abs=0.02)

    def test_large_pool_numerically_stable(self):
        res = mmck(arrival_rate=100.0, holding_time=1.0, servers=512,
                   capacity=1024)
        assert 0.0 <= res.blocking <= 1.0
        assert math.isfinite(res.wait)

    def test_overload_blocks_excess(self):
        # λs = 10 into 2 servers: roughly 80% must be turned away.
        res = mmck(10.0, 1.0, 2, 4)
        accepted = 10.0 * (1 - res.blocking)
        assert accepted <= 2.0 + 1e-6
