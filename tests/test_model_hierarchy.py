"""Tests for hierarchical (replica-group) aggregation."""

import pytest

from repro.cluster.node import DEFAULT_NODE, NodeSpec, Role
from repro.cluster.topology import ClusterSpec, NodePlacement
from repro.model.hierarchy import AggregationPlan, aggregation_plan
from repro.model.mva import MvaNetwork, Station, solve_mva, solve_mva_batch


def _wide(n_proxy=4, n_app=4, n_db=2):
    return ClusterSpec.wide(n_proxy, n_app, n_db)


class TestPlan:
    def test_homogeneous_cluster_collapses_per_tier(self):
        cluster = _wide()
        plan = aggregation_plan(cluster, cluster.default_configuration())
        assert not plan.is_trivial
        assert plan.num_nodes == cluster.num_nodes
        sizes = sorted(len(members) for _, members in plan.groups)
        assert sizes == [2, 4, 4]

    def test_representative_is_first_member(self):
        cluster = _wide()
        plan = aggregation_plan(cluster, cluster.default_configuration())
        for rep, members in plan.groups:
            assert rep == members[0]

    def test_divergent_config_splits_group(self):
        cluster = _wide()
        cfg = dict(cluster.default_configuration())
        app = cluster.nodes_in(Role.APP)[0]
        key = next(k for k in cfg if k.startswith(f"{app}."))
        cfg[key] += 1
        plan = aggregation_plan(cluster, cfg)
        # The tweaked app node falls out into its own singleton group.
        group_of = {m: members for _, members in plan.groups for m in members}
        assert group_of[app] == (app,)
        assert len(group_of[cluster.nodes_in(Role.APP)[1]]) == 3

    def test_heterogeneous_tier_refuses_aggregation(self):
        big = NodeSpec(cpu_cores=DEFAULT_NODE.cpu_cores * 2)
        placements = [
            NodePlacement("proxy0", Role.PROXY, DEFAULT_NODE),
            NodePlacement("app0", Role.APP, DEFAULT_NODE),
            NodePlacement("app1", Role.APP, big),
            NodePlacement("db0", Role.DB, DEFAULT_NODE),
        ]
        cluster = ClusterSpec(placements)
        plan = aggregation_plan(cluster, cluster.default_configuration())
        # Mixed hardware: nothing aggregates, the plan is trivial.
        assert plan.is_trivial
        assert plan.num_nodes == 4

    def test_expansions_skip_singletons(self):
        cluster = _wide(2, 3, 1)
        plan = aggregation_plan(cluster, cluster.default_configuration())
        expansions = dict(plan.expansions())
        assert all(len(rest) >= 1 for rest in expansions.values())
        total_hidden = sum(len(rest) for rest in expansions.values())
        assert total_hidden == plan.num_nodes - len(plan.groups)

    def test_trivial_plan_on_three_tier(self):
        # Single-node tiers: every group is a singleton.
        cluster = ClusterSpec.three_tier(1, 1, 1)
        plan = aggregation_plan(cluster, cluster.default_configuration())
        assert plan.is_trivial

    def test_plan_is_hashable(self):
        cluster = _wide()
        plan = aggregation_plan(cluster, cluster.default_configuration())
        assert isinstance(hash(plan), int)
        assert plan == AggregationPlan(groups=plan.groups)


class TestAggregatedSolve:
    """k identical stations == one station with multiplicity k."""

    @pytest.mark.parametrize("population", [10, 200, 2000])
    @pytest.mark.parametrize("k", [2, 8, 64])
    def test_schweitzer_equivalence(self, population, k):
        flat = [Station(f"r{i}", 0.02) for i in range(k)] + [
            Station("db", 0.05, servers=2)
        ]
        agg = [
            Station("r0", 0.02, multiplicity=k),
            Station("db", 0.05, servers=2),
        ]
        x_flat = solve_mva(flat, population, 1.0).throughput
        x_agg = solve_mva(agg, population, 1.0).throughput
        assert x_agg == pytest.approx(x_flat, rel=1e-9)

    def test_batch_equivalence(self):
        k = 16
        flat = tuple(Station(f"r{i}", 0.02) for i in range(k))
        agg = (Station("r0", 0.02, multiplicity=k),)
        res = solve_mva_batch(
            [MvaNetwork(flat, 300, 1.0), MvaNetwork(agg, 300, 1.0)]
        )
        assert res[1].throughput == pytest.approx(
            res[0].throughput, rel=1e-9
        )

    def test_per_station_outputs_are_per_replica(self):
        k = 4
        flat = [Station(f"r{i}", 0.02) for i in range(k)]
        agg = [Station("r0", 0.02, multiplicity=k)]
        r_flat = solve_mva(flat, 100, 1.0)
        r_agg = solve_mva(agg, 100, 1.0)
        assert r_agg.utilization["r0"] == pytest.approx(
            r_flat.utilization["r0"], rel=1e-9
        )
        assert r_agg.queue["r0"] == pytest.approx(
            r_flat.queue["r0"], rel=1e-9
        )

    def test_multiplicity_validation(self):
        with pytest.raises(ValueError):
            Station("s", 0.1, multiplicity=0)

    def test_exact_solver_rejects_multiplicity(self):
        from repro.model.mva import solve_mva_exact

        with pytest.raises(ValueError):
            solve_mva_exact([Station("s", 0.1, multiplicity=2)], 10, 1.0)


class TestBackendEquivalence:
    """The full analytic backend: aggregated vs per-node solves."""

    def test_hierarchical_matches_exact(self):
        from repro.model.analytic import AnalyticBackend
        from repro.model.base import Scenario
        from repro.model.noise import NoiseModel
        from repro.tpcw.interactions import STANDARD_MIXES

        cluster = _wide()
        scenario = Scenario(
            cluster=cluster,
            mix=STANDARD_MIXES["shopping"],
            population=2000,
        )
        cfg = cluster.default_configuration()
        kwargs = {"noise": NoiseModel(0.0, 0.0, 0.0)}
        exact = AnalyticBackend(approximation="exact", **kwargs)
        hier = AnalyticBackend(approximation="hierarchical", **kwargs)
        m_exact = exact.measure(scenario, cfg, seed=0)
        m_hier = hier.measure(scenario, cfg, seed=0)
        assert m_hier.wips == pytest.approx(m_exact.wips, rel=1e-9)
        # Aggregated-away members get the representative's outputs.
        assert set(m_hier.utilization) == set(m_exact.utilization)
        assert m_hier.diagnostics["solver.aggregated_nodes"] == (
            cluster.num_nodes - 3
        )
        assert m_exact.diagnostics["solver.aggregated_nodes"] == 0.0
