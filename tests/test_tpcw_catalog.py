"""Tests for the item catalog and its cache model."""

import numpy as np
import pytest

from repro.tpcw.catalog import Catalog
from repro.util.units import KB, MB


@pytest.fixture(scope="module")
def catalog():
    return Catalog(scale=2000, seed=7)


class TestConstruction:
    def test_validation(self):
        with pytest.raises(ValueError):
            Catalog(scale=0)
        with pytest.raises(ValueError):
            Catalog(objects_per_item=0)
        with pytest.raises(ValueError):
            Catalog(zipf_exponent=-1)

    def test_num_objects(self, catalog):
        assert catalog.num_objects == 2000 * 2

    def test_sizes_positive_with_floor(self, catalog):
        assert catalog.sizes.min() >= 256.0

    def test_popularity_is_distribution(self, catalog):
        assert catalog.popularity.sum() == pytest.approx(1.0)
        assert (catalog.popularity >= 0).all()
        # Popularity is rank-sorted descending.
        assert (np.diff(catalog.popularity) <= 0).all()

    def test_deterministic_for_seed(self):
        a = Catalog(scale=100, seed=3)
        b = Catalog(scale=100, seed=3)
        assert np.array_equal(a.sizes, b.sizes)

    def test_different_seeds_differ(self):
        a = Catalog(scale=100, seed=3)
        b = Catalog(scale=100, seed=4)
        assert not np.array_equal(a.sizes, b.sizes)

    def test_read_only_views(self, catalog):
        with pytest.raises(ValueError):
            catalog.sizes[0] = 1.0

    def test_universe_and_mean(self, catalog):
        assert catalog.universe_bytes() == pytest.approx(catalog.sizes.sum())
        assert 0 < catalog.mean_object_bytes() < catalog.sizes.max()


class TestHitFraction:
    def test_zero_cache_no_hits(self, catalog):
        assert catalog.hit_fraction(0) == 0.0

    def test_monotone_in_cache_size(self, catalog):
        hits = [catalog.hit_fraction(s) for s in (1 * MB, 4 * MB, 16 * MB, 256 * MB)]
        assert all(a <= b for a, b in zip(hits, hits[1:]))

    def test_full_universe_cache_hits_everything(self, catalog):
        assert catalog.hit_fraction(catalog.universe_bytes() * 1.01) == pytest.approx(1.0)

    def test_admission_bounds_reduce_hits(self, catalog):
        unbounded = catalog.hit_fraction(64 * MB)
        bounded = catalog.hit_fraction(64 * MB, max_size_bytes=4 * KB)
        assert bounded < unbounded

    def test_min_size_excludes_small_objects(self, catalog):
        full = catalog.hit_fraction(catalog.universe_bytes() * 2)
        filtered = catalog.hit_fraction(
            catalog.universe_bytes() * 2, min_size_bytes=64 * KB
        )
        assert filtered < full

    def test_impossible_bounds_no_hits(self, catalog):
        assert catalog.hit_fraction(
            1 * MB, min_size_bytes=10 * MB, max_size_bytes=1 * KB
        ) == 0.0

    def test_zipf_concentration(self):
        """A more skewed catalog yields higher hits at equal cache size."""
        flat = Catalog(scale=2000, zipf_exponent=0.2, seed=5)
        skew = Catalog(scale=2000, zipf_exponent=1.2, seed=5)
        assert skew.hit_fraction(4 * MB) > flat.hit_fraction(4 * MB)


class TestSampling:
    def test_sample_object_in_range(self, catalog):
        rng = np.random.default_rng(0)
        for _ in range(100):
            idx = catalog.sample_object(rng)
            assert 0 <= idx < catalog.num_objects

    def test_popular_objects_sampled_more(self, catalog):
        rng = np.random.default_rng(1)
        idx = catalog.sample_objects(rng, 20_000)
        top_fraction = np.mean(idx < catalog.num_objects // 10)
        assert top_fraction > 0.3  # zipf 0.8: top 10% take far over 10%

    def test_object_size_lookup(self, catalog):
        assert catalog.object_size(0) == catalog.sizes[0]
