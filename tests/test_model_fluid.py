"""Tests for the fluid/mean-field MVA solver."""

import pytest

from repro.model.fluid import solve_mva_fluid
from repro.model.mva import (
    MvaNetwork,
    Station,
    solve_mva,
    solve_mva_batch,
    solve_mva_exact,
)

#: Station sets for the parametrized exact-vs-fluid comparisons.
MIXES = {
    "balanced": [Station(f"s{i}", d) for i, d in enumerate([0.010, 0.012, 0.008])],
    "bottleneck": [Station(f"s{i}", d) for i, d in enumerate([0.050, 0.010, 0.005])],
    "skewed": [Station(f"s{i}", d) for i, d in enumerate([0.030, 0.001, 0.001])],
}


class TestValidation:
    def test_bad_population(self):
        with pytest.raises(ValueError):
            solve_mva_fluid([Station("s", 0.1)], 0, 1.0)

    def test_negative_think(self):
        with pytest.raises(ValueError):
            solve_mva_fluid([Station("s", 0.1)], 1, -1.0)

    def test_pure_delay(self):
        assert solve_mva_fluid([], 10, 2.0).throughput == pytest.approx(5.0)


class TestAgainstExact:
    """Fluid vs the exact MVA recursion, with explicit error bands.

    The fluid limit is asymptotically exact: the error peaks near the
    saturation knee (N* = (z + sum D)/D_max) and vanishes on both sides.
    """

    @pytest.mark.parametrize("mix", sorted(MIXES))
    @pytest.mark.parametrize("population", [1, 5, 20, 50, 100, 500, 2000])
    def test_error_band(self, mix, population):
        stations = MIXES[mix]
        exact = solve_mva_exact(stations, population, 1.0).throughput
        fluid = solve_mva_fluid(stations, population, 1.0).throughput
        # Worst case observed across these mixes is ~4.6e-2 at the knee.
        assert fluid == pytest.approx(exact, rel=6e-2)
        # Fluid never exceeds the capacity bound and never goes negative.
        d_max = max(s.demand / s.servers for s in stations)
        assert 0.0 < fluid <= 1.0 / d_max + 1e-9

    @pytest.mark.parametrize("mix", sorted(MIXES))
    def test_tight_far_from_knee(self, mix):
        stations = MIXES[mix]
        light = 1
        heavy = 5000
        for population, band in ((light, 1e-2), (heavy, 1e-3)):
            exact = solve_mva_exact(stations, population, 1.0).throughput
            fluid = solve_mva_fluid(stations, population, 1.0).throughput
            assert fluid == pytest.approx(exact, rel=band)

    def test_asymptotically_exact(self):
        # X -> 1/D_max as N -> inf; the error must shrink monotonically
        # well past the knee.
        stations = MIXES["bottleneck"]
        cap = 1.0 / max(s.demand for s in stations)
        errs = [
            abs(solve_mva_fluid(stations, n, 1.0).throughput - cap) / cap
            for n in (1_000, 100_000, 10_000_000)
        ]
        assert errs[0] > errs[1] > errs[2]
        assert errs[2] < 1e-6


class TestAgainstSchweitzer:
    """Fluid vs Schweitzer on multi-server stations (no exact reference)."""

    @pytest.mark.parametrize("population", [50, 500, 5000])
    def test_multi_server(self, population):
        stations = [
            Station("a", 0.04, servers=4),
            Station("b", 0.02, servers=2),
            Station("c", 0.01),
        ]
        schw = solve_mva(stations, population, 1.0).throughput
        fluid = solve_mva_fluid(stations, population, 1.0).throughput
        assert fluid == pytest.approx(schw, rel=1e-2)


class TestDegenerates:
    def test_single_customer_zero_think(self):
        # The known small-N limitation: with z=0 and one station the
        # population equation rho/(1-rho) = 1 gives rho = 1/2, i.e. the
        # fluid X is half the exact 1/D.  This is why auto mode only
        # selects fluid at large N.
        result = solve_mva_fluid([Station("s", 0.1)], 1, 0.0)
        assert result.converged
        assert result.throughput == pytest.approx(5.0, rel=1e-6)
        assert solve_mva_exact(
            [Station("s", 0.1)], 1, 0.0
        ).throughput == pytest.approx(10.0)

    def test_single_station_large_n(self):
        result = solve_mva_fluid([Station("s", 0.01)], 10_000, 1.0)
        assert result.throughput == pytest.approx(100.0, rel=2e-4)
        assert result.utilization["s"] == pytest.approx(1.0, abs=2e-4)

    def test_zero_think_time_large_n(self):
        stations = MIXES["balanced"]
        fluid = solve_mva_fluid(stations, 2000, 0.0).throughput
        cap = 1.0 / max(s.demand for s in stations)
        assert fluid == pytest.approx(cap, rel=1e-3)

    def test_zero_demand_station(self):
        result = solve_mva_fluid(
            [Station("idle", 0.0), Station("busy", 0.02)], 1000, 1.0
        )
        assert result.utilization["idle"] == 0.0
        assert result.queue["idle"] == 0.0
        assert result.throughput == pytest.approx(50.0, rel=2e-3)

    def test_population_independence_of_cost(self):
        # The fixed point iterates to a tolerance on X, not over N: the
        # iteration count must not grow with the population.
        small = solve_mva_fluid(MIXES["balanced"], 1_000, 1.0).iterations
        huge = solve_mva_fluid(MIXES["balanced"], 10**9, 1.0).iterations
        assert huge <= small + 5


class TestBatchConsistency:
    def test_batch_matches_scalar(self):
        # Fluid rows in a batch must equal the scalar solver bit for bit.
        nets = [
            MvaNetwork(tuple(MIXES["balanced"]), n, 1.0, method="fluid")
            for n in (10, 500, 100_000)
        ]
        batch = solve_mva_batch(nets)
        for net, got in zip(nets, batch):
            ref = solve_mva_fluid(
                list(net.stations), net.population, net.think_time
            )
            assert got.throughput == ref.throughput
            assert got.response_time == ref.response_time
            assert got.iterations == ref.iterations
            assert got.queue == ref.queue

    def test_mixed_methods_batch(self):
        # Schweitzer and fluid rows mix in one batch; each row matches
        # its scalar reference exactly.
        nets = [
            MvaNetwork(tuple(MIXES["balanced"]), 100, 1.0),
            MvaNetwork(tuple(MIXES["bottleneck"]), 50_000, 1.0, method="fluid"),
            MvaNetwork(tuple(MIXES["skewed"]), 200, 1.0),
        ]
        batch = solve_mva_batch(nets)
        assert batch[0].throughput == solve_mva(
            list(nets[0].stations), 100, 1.0
        ).throughput
        assert batch[1].throughput == solve_mva_fluid(
            list(nets[1].stations), 50_000, 1.0
        ).throughput
        assert batch[2].throughput == solve_mva(
            list(nets[2].stations), 200, 1.0
        ).throughput

    def test_method_validation(self):
        with pytest.raises(ValueError):
            MvaNetwork(tuple(MIXES["balanced"]), 10, 1.0, method="magic")
