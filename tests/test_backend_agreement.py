"""Randomized cross-validation of the two backends.

The tuning experiments trust the analytic backend across the whole
configuration space, not just at the defaults — so the agreement check must
hold for *arbitrary feasible configurations*, including lopsided ones.
Seeds are fixed (not hypothesis-driven) to keep the DES cost bounded; each
case is an independent random feasible configuration.
"""

import numpy as np
import pytest

from repro.cluster.topology import ClusterSpec
from repro.des.backend import SimulationBackend
from repro.model.analytic import AnalyticBackend
from repro.model.base import Scenario
from repro.model.noise import NoiseModel
from repro.tpcw.interactions import SHOPPING_MIX
from repro.util.rng import spawn_rng


@pytest.fixture(scope="module")
def backends():
    return (
        SimulationBackend(time_scale=0.05),
        AnalyticBackend(noise=NoiseModel(0.0, 0.0, 0.0)),
    )


@pytest.fixture(scope="module")
def cluster():
    return ClusterSpec.three_tier(1, 1, 1)


def _random_feasible(cluster, seed):
    space = cluster.full_space()
    constraints = cluster.full_constraints()
    rng = spawn_rng(seed, "agreement")
    # Mid-range biased sampling: average two uniform draws per dimension so
    # most parameters sit away from pathological extremes (as a tuner's
    # candidates do after the first few iterations).
    values = {}
    for p in space.parameters:
        a, b = p.random(rng), p.random(rng)
        values[p.name] = p.clamp((a + b) / 2)
    return constraints.repair(space, values)


@pytest.mark.parametrize("case", range(6))
def test_random_configs_agree(backends, cluster, case):
    des, analytic = backends
    config = _random_feasible(cluster, case)
    scenario = Scenario(cluster=cluster, mix=SHOPPING_MIX, population=500)
    w_des = des.measure(scenario, config, seed=case).wips
    w_ana = analytic.measure(scenario, config, seed=case).wips
    assert w_des == pytest.approx(w_ana, rel=0.15), dict(config)


def test_agreement_of_relative_ordering(backends, cluster):
    """Beyond absolute agreement: for configurations whose analytic WIPS
    differ *materially* (beyond DES sampling noise), the DES must order
    them the same way — that ordering is all the tuner actually consumes.
    Ties (configs within a few percent) carry no ordering information."""
    des, analytic = backends
    scenario = Scenario(cluster=cluster, mix=SHOPPING_MIX, population=750)
    configs = [_random_feasible(cluster, 100 + i) for i in range(4)]
    configs.append(cluster.default_configuration())
    w_des = [des.measure(scenario, c, seed=1).wips for c in configs]
    w_ana = [analytic.measure(scenario, c, seed=1).wips for c in configs]
    compared = 0
    for i in range(len(configs)):
        for j in range(i + 1, len(configs)):
            if abs(w_ana[i] - w_ana[j]) / max(w_ana[i], w_ana[j]) > 0.05:
                compared += 1
                assert (w_des[i] > w_des[j]) == (w_ana[i] > w_ana[j]), (
                    i, j, w_des, w_ana,
                )
    assert compared >= 1  # the sample must contain a material difference
