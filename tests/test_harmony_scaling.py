"""Tests for parameter duplication and partitioning schemes."""

import pytest

from repro.harmony.parameter import Configuration, IntParameter, ParameterSpace
from repro.harmony.scaling import (
    DuplicationScheme,
    PartitionScheme,
    TuningGroup,
    TuningScheme,
    identity_scheme,
)


def _full_space():
    """Two proxies and one app node, two parameters each."""
    params = []
    for node in ("p0", "p1", "a0"):
        params.append(IntParameter(f"{node}.size", 8, 4, 64))
        params.append(IntParameter(f"{node}.threads", 5, 1, 50))
    return ParameterSpace(params)


class TestIdentityScheme:
    def test_single_group_covers_all(self):
        space = _full_space()
        scheme = identity_scheme(space)
        assert len(scheme.groups) == 1
        assert scheme.groups[0].space.names == space.names
        assert scheme.total_tuned_dimensions == 6

    def test_combine_round_trip(self):
        space = _full_space()
        scheme = identity_scheme(space)
        cfg = space.default_configuration()
        combined = scheme.combine({"all": cfg})
        assert combined == cfg


class TestSchemeValidation:
    def test_uncovered_parameter_rejected(self):
        space = _full_space()
        group = TuningGroup(
            "g", space.subspace(["p0.size"]), {"p0.size": ("p0.size",)}
        )
        with pytest.raises(ValueError, match="not covered"):
            TuningScheme(space, [group])

    def test_double_covered_parameter_rejected(self):
        space = _full_space()
        g1 = TuningGroup("g1", space.subspace(["p0.size"]), {"p0.size": ("p0.size",)})
        with pytest.raises(ValueError, match="covered by both"):
            TuningScheme(space, [g1, g1] if False else [
                g1,
                TuningGroup(
                    "g2",
                    ParameterSpace(list(space.subspace(
                        [n for n in space.names if n != "p0.size"]).parameters)
                        + [IntParameter("alias", 8, 4, 64)]),
                    {**{n: (n,) for n in space.names if n != "p0.size"},
                     "alias": ("p0.size",)},
                ),
            ])

    def test_unknown_expansion_target_rejected(self):
        space = _full_space()
        group = TuningGroup(
            "g", space.subspace(["p0.size"]), {"p0.size": ("zzz.size",)}
        )
        with pytest.raises(ValueError, match="unknown"):
            TuningScheme(space, [group])

    def test_group_missing_expansion_rejected(self):
        space = _full_space()
        with pytest.raises(ValueError, match="no expansion"):
            TuningGroup("g", space.subspace(["p0.size"]), {})

    def test_combine_missing_fragment_rejected(self):
        scheme = identity_scheme(_full_space())
        with pytest.raises(KeyError):
            scheme.combine({})


class TestDuplicationScheme:
    def test_tier_level_space(self):
        scheme = DuplicationScheme(
            _full_space(), {"proxy": ["p0", "p1"], "app": ["a0"]}
        )
        group = scheme.groups[0]
        assert sorted(group.space.names) == [
            "app.size", "app.threads", "proxy.size", "proxy.threads",
        ]
        assert scheme.total_tuned_dimensions == 4

    def test_values_duplicated_within_tier(self):
        scheme = DuplicationScheme(
            _full_space(), {"proxy": ["p0", "p1"], "app": ["a0"]}
        )
        fragment = Configuration(
            {"proxy.size": 32, "proxy.threads": 9, "app.size": 16, "app.threads": 3}
        )
        full = scheme.combine({"duplication": fragment})
        assert full["p0.size"] == 32
        assert full["p1.size"] == 32
        assert full["p0.threads"] == 9
        assert full["p1.threads"] == 9
        assert full["a0.size"] == 16

    def test_node_in_two_tiers_rejected(self):
        with pytest.raises(ValueError, match="more than one tier"):
            DuplicationScheme(
                _full_space(), {"proxy": ["p0", "p1"], "app": ["p0", "a0"]}
            )

    def test_unassigned_node_rejected(self):
        with pytest.raises(ValueError, match="not assigned"):
            DuplicationScheme(_full_space(), {"proxy": ["p0", "p1"]})

    def test_empty_tier_rejected(self):
        with pytest.raises(ValueError, match="no nodes"):
            DuplicationScheme(
                _full_space(), {"proxy": ["p0", "p1", "a0"], "app": []}
            )

    def test_heterogeneous_tier_rejected(self):
        params = [
            IntParameter("p0.size", 8, 4, 64),
            IntParameter("p1.other", 1, 0, 2),
            IntParameter("a0.size", 8, 4, 64),
        ]
        with pytest.raises(ValueError, match="homogeneous"):
            DuplicationScheme(
                ParameterSpace(params), {"proxy": ["p0", "p1"], "app": ["a0"]}
            )


class TestPartitionScheme:
    def _space4(self):
        params = []
        for node in ("p0", "p1", "a0", "a1"):
            params.append(IntParameter(f"{node}.size", 8, 4, 64))
        return ParameterSpace(params)

    def test_one_group_per_line(self):
        scheme = PartitionScheme(
            self._space4(), {"line0": ["p0", "a0"], "line1": ["p1", "a1"]}
        )
        assert len(scheme.groups) == 2
        ids = sorted(g.group_id for g in scheme.groups)
        assert ids == ["line0", "line1"]
        assert scheme.max_group_dimension == 2

    def test_combine_merges_lines(self):
        scheme = PartitionScheme(
            self._space4(), {"line0": ["p0", "a0"], "line1": ["p1", "a1"]}
        )
        full = scheme.combine(
            {
                "line0": Configuration({"p0.size": 10, "a0.size": 20}),
                "line1": Configuration({"p1.size": 30, "a1.size": 40}),
            }
        )
        assert dict(full) == {
            "p0.size": 10, "a0.size": 20, "p1.size": 30, "a1.size": 40,
        }

    def test_node_in_two_lines_rejected(self):
        with pytest.raises(ValueError, match="more than one work line"):
            PartitionScheme(
                self._space4(),
                {"line0": ["p0", "a0"], "line1": ["p0", "p1", "a1"]},
            )

    def test_unassigned_node_rejected(self):
        with pytest.raises(ValueError, match="not assigned"):
            PartitionScheme(self._space4(), {"line0": ["p0", "a0"]})
