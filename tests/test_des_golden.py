"""DES byte-identity gate: the fast path vs the pre-fast-path fixture.

``tests/fixtures/des_golden.json`` was generated from the *seed* backend
before the lean kernel and block-sampled RNG landed; every case must
still reproduce byte for byte (floats compared via ``float.hex()``), on
both the fast kernel (the default) and the ``legacy_kernel=True`` seed
kernel.  A single reordered event or extra random draw fails this suite.
"""

import json

import pytest

from repro.des.backend import SimulationBackend

from tests.des_golden_cases import (
    FIXTURE_PATH,
    build_case,
    measurement_to_jsonable,
)

with FIXTURE_PATH.open() as fh:
    _FIXTURE = json.load(fh)

_CASES = _FIXTURE["cases"]


def test_fixture_shape():
    assert _FIXTURE["schema"] == "des_golden/v1"
    # The issue's floor: >= 3 scenarios x 3 seeds x 2 time scales.
    assert len({c["scenario"] for c in _CASES}) >= 3
    assert len({c["seed"] for c in _CASES}) >= 3
    assert len({c["time_scale"] for c in _CASES}) >= 2


@pytest.mark.parametrize("kernel", ["fast", "legacy"])
@pytest.mark.parametrize(
    "case",
    _CASES,
    ids=[
        f"{c['scenario']}-s{c['seed']}-ts{c['time_scale']}" for c in _CASES
    ],
)
def test_byte_identical_to_seed_backend(case, kernel):
    scenario, config, kwargs = build_case(case["scenario"])
    backend = SimulationBackend(
        time_scale=case["time_scale"],
        legacy_kernel=(kernel == "legacy"),
        **kwargs,
    )
    measurement = backend.measure(scenario, config, seed=case["seed"])
    assert measurement_to_jsonable(measurement) == case["measurement"]
