"""Tests for the sensitivity and importance analysis tools."""

import pytest

from repro.analysis.importance import history_importance, importance_table
from repro.analysis.sensitivity import (
    SensitivityCurve,
    sensitivity_report,
    sweep_parameter,
)
from repro.cluster.topology import ClusterSpec
from repro.harmony.history import TuningHistory
from repro.harmony.parameter import Configuration, IntParameter, ParameterSpace
from repro.model.analytic import AnalyticBackend
from repro.model.base import Scenario
from repro.model.noise import NoiseModel
from repro.tpcw.interactions import BROWSING_MIX


@pytest.fixture(scope="module")
def setup():
    cluster = ClusterSpec.three_tier(1, 1, 1)
    scenario = Scenario(cluster=cluster, mix=BROWSING_MIX, population=750)
    backend = AnalyticBackend(noise=NoiseModel(0.0, 0.0, 0.0))
    return cluster, scenario, backend


class TestSensitivityCurve:
    def test_validation(self):
        with pytest.raises(ValueError):
            SensitivityCurve("p", (), (), (), 1.0)
        with pytest.raises(ValueError):
            SensitivityCurve("p", (1, 2), (1.0,), (0.0, 0.0), 1.0)

    def test_effect_and_extremes(self):
        c = SensitivityCurve("p", (1, 2, 3), (90.0, 100.0, 80.0), (0, 0, 0), 100.0)
        assert c.effect_size == pytest.approx(0.2)
        assert c.best_value == 2
        assert c.worst_value == 3


class TestSweepParameter:
    def test_validation(self, setup):
        cluster, scenario, backend = setup
        base = cluster.default_configuration()
        with pytest.raises(ValueError):
            sweep_parameter(backend, scenario, base, "proxy0.cache_mem", points=1)
        with pytest.raises(ValueError):
            sweep_parameter(backend, scenario, base, "proxy0.cache_mem", repeats=0)

    def test_cache_mem_has_large_effect_for_browsing(self, setup):
        cluster, scenario, backend = setup
        curve = sweep_parameter(
            backend, scenario, cluster.default_configuration(),
            "proxy0.cache_mem", points=4, repeats=1,
        )
        assert curve.effect_size > 0.10
        assert curve.best_value > curve.worst_value  # more cache is better

    def test_swap_watermarks_near_neutral(self, setup):
        cluster, scenario, backend = setup
        curve = sweep_parameter(
            backend, scenario, cluster.default_configuration(),
            "proxy0.cache_swap_low", points=4, repeats=1,
            constraints=cluster.full_constraints(),
        )
        assert curve.effect_size < 0.03

    def test_values_cover_bounds_and_base(self, setup):
        cluster, scenario, backend = setup
        space = cluster.full_space()
        curve = sweep_parameter(
            backend, scenario, cluster.default_configuration(),
            "db0.table_cache", points=3, repeats=1,
        )
        param = space["db0.table_cache"]
        assert param.low in curve.values
        assert param.high in curve.values
        assert param.default in curve.values

    def test_deterministic(self, setup):
        cluster, scenario, backend = setup
        kw = dict(points=3, repeats=2, seed=5)
        a = sweep_parameter(backend, scenario, cluster.default_configuration(),
                            "proxy0.cache_mem", **kw)
        b = sweep_parameter(backend, scenario, cluster.default_configuration(),
                            "proxy0.cache_mem", **kw)
        assert a.mean_wips == b.mean_wips


class TestSensitivityReport:
    def test_ranked_and_table(self, setup):
        cluster, scenario, backend = setup
        report = sensitivity_report(
            backend, scenario,
            names=["proxy0.cache_mem", "proxy0.cache_swap_low"],
            points=3, repeats=1,
        )
        ranked = report.ranked()
        assert ranked[0].name == "proxy0.cache_mem"
        assert "cache_mem" in report.to_table().render()
        with pytest.raises(KeyError):
            report.curve("nope")


class TestHistoryImportance:
    def _history(self, n=40):
        """A synthetic run where only 'driver' matters."""
        import numpy as np

        space = ParameterSpace(
            [
                IntParameter("driver", 0, 0, 100),
                IntParameter("dud", 50, 0, 100),
            ]
        )
        rng = np.random.default_rng(0)
        h = TuningHistory()
        for _ in range(n):
            d = int(rng.integers(0, 101))
            u = int(rng.integers(0, 101))
            h.append(Configuration({"driver": d, "dud": u}), 100.0 + d)
        return h, space

    def test_driver_outranks_dud(self):
        h, space = self._history()
        imps = history_importance(h, space)
        assert imps[0].name == "driver"
        assert imps[0].correlation > 0.9
        assert imps[0].score > imps[1].score

    def test_too_short_history_rejected(self):
        h = TuningHistory()
        h.append(Configuration({"a": 1}), 1.0)
        with pytest.raises(ValueError):
            history_importance(h, ParameterSpace([IntParameter("a", 1, 0, 2)]))

    def test_movement_component(self):
        space = ParameterSpace([IntParameter("a", 0, 0, 100)])
        h = TuningHistory()
        h.append(Configuration({"a": 0}), 1.0)
        h.append(Configuration({"a": 0}), 1.0)
        h.append(Configuration({"a": 100}), 10.0)  # best moved full span
        imps = history_importance(h, space)
        assert imps[0].movement == pytest.approx(1.0)

    def test_table_renders(self):
        h, space = self._history()
        text = importance_table(history_importance(h, space)).render()
        assert "driver" in text and "dud" in text
