"""Speculative lookahead batching: bit-identity and waste accounting.

The contract under test (see :mod:`repro.harmony.speculate`) is that
speculation changes *when* deterministic solutions are computed and
nothing else: every trajectory — configurations and performances — must
compare exactly ``==`` against the serial session at every strategy,
scheme, backend and jobs setting.  No tolerances anywhere in this file.
"""

import pytest

from repro.cluster.topology import ClusterSpec
from repro.des.backend import SimulationBackend
from repro.harmony.speculate import SpeculativeEvaluator
from repro.model.analytic import AnalyticBackend
from repro.model.base import MemoizedBackend, Scenario
from repro.tpcw.interactions import SHOPPING_MIX
from repro.tuning.session import ClusterTuningSession, make_scheme
from repro.util.rng import derive_seed

STRATEGIES = ("simplex", "simplex-damped", "coordinate", "random")
METHODS = ("default", "duplication", "partitioning")


def _scenario(population: int = 600) -> Scenario:
    # Two nodes per tier so the partitioning scheme can form work lines.
    return Scenario(
        cluster=ClusterSpec.three_tier(2, 2, 2),
        mix=SHOPPING_MIX,
        population=population,
    )


def _trajectory(session: ClusterTuningSession, iterations: int):
    session.run(iterations)
    return [(r.configuration, r.performance) for r in session.history.records]


def _run_pair(
    scenario: Scenario,
    method: str,
    strategy: str,
    iterations: int,
    make_base_backend,
    jobs: int = 1,
    alternatives: bool = False,
):
    """Serial and speculative trajectories for one (method, strategy)."""
    results = {}
    for speculate in (False, True):
        session = ClusterTuningSession(
            MemoizedBackend(make_base_backend()),
            scenario,
            scheme=make_scheme(scenario, method, work_lines=2),
            strategy=strategy,
            seed=derive_seed(17, "spec-test", method, strategy),
            speculate=speculate,
            speculate_jobs=jobs if speculate else 1,
        )
        if speculate and alternatives:
            session.speculator.alternatives = True
        results[speculate] = (_trajectory(session, iterations), session)
    return results


class TestBitIdentity:
    """Exact-equality trajectories, serial vs speculative."""

    @pytest.mark.parametrize("method", METHODS)
    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_analytic_all_strategies_and_schemes(self, method, strategy):
        results = _run_pair(
            _scenario(), method, strategy, 18, AnalyticBackend
        )
        assert results[True][0] == results[False][0]
        serial, spec = results[False][1], results[True][1]
        assert spec.best_configuration() == serial.best_configuration()
        assert spec.speculation_stats is not None
        assert serial.speculation_stats is None

    @pytest.mark.parametrize("method", ("default", "partitioning"))
    def test_analytic_jobs_2(self, method):
        """--jobs fans prefetches over workers; results must not move."""
        results = _run_pair(
            _scenario(), method, "simplex", 14, AnalyticBackend, jobs=2
        )
        assert results[True][0] == results[False][0]

    @pytest.mark.parametrize("method", ("partitioning", "default"))
    def test_analytic_alternatives(self, method):
        """The alternatives knob prefetches more, still bit-identical."""
        results = _run_pair(
            _scenario(), method, "simplex", 14, AnalyticBackend,
            alternatives=True,
        )
        assert results[True][0] == results[False][0]

    @pytest.mark.parametrize("strategy", ("simplex", "random"))
    def test_des_backend(self, strategy):
        """Speculation must not perturb the DES backend's RNG streams."""
        scenario = Scenario(
            cluster=ClusterSpec.three_tier(2, 2, 2),
            mix=SHOPPING_MIX,
            population=40,
        )
        results = _run_pair(
            scenario, "default", strategy, 6,
            lambda: SimulationBackend(time_scale=0.02),
        )
        assert results[True][0] == results[False][0]


class TestWasteAccounting:
    """Counter invariants: waste bounded by the frontier, per step."""

    def test_waste_bounded_by_frontier(self, monkeypatch):
        per_step = []
        original = SpeculativeEvaluator.prefetch

        def spy(self, scenario, fragments):
            before = self.stats.planned
            original(self, scenario, fragments)
            frontier = sum(len(p) for p in self._planned.values())
            per_step.append((self.stats.planned - before, frontier))

        monkeypatch.setattr(SpeculativeEvaluator, "prefetch", spy)

        scenario = _scenario()
        session = ClusterTuningSession(
            MemoizedBackend(AnalyticBackend()),
            scenario,
            scheme=make_scheme(scenario, "partitioning", work_lines=2),
            strategy="simplex",
            seed=derive_seed(17, "spec-test", "waste"),
            speculate=True,
        )
        session.run(20)
        stats = session.speculation_stats

        assert per_step, "speculator was never invoked"
        for newly_planned, frontier in per_step:
            # Each step plans at most its frontier (dedupe only shrinks it).
            assert 0 <= newly_planned <= frontier

        assert stats.planned == sum(d for d, _ in per_step)
        assert stats.hits <= stats.planned
        assert stats.waste == max(stats.planned - stats.hits, 0)
        assert 0.0 <= stats.waste_ratio <= 1.0
        assert 0.0 <= stats.hit_rate <= 1.0
        # Every step after the first scores each group's committed ask
        # against the previous plan, as a hit or a miss — never silently.
        groups = len(session.server.sessions)
        assert stats.hits + stats.misses == (20 - 1) * groups

    def test_stats_reset_on_mix_change(self):
        scenario = _scenario()
        session = ClusterTuningSession(
            MemoizedBackend(AnalyticBackend()),
            scenario,
            scheme=make_scheme(scenario, "default"),
            strategy="simplex",
            seed=derive_seed(17, "spec-test", "reset"),
            speculate=True,
        )
        session.run(5)
        assert session.speculator._planned is not None
        session.set_mix(SHOPPING_MIX)
        # The stale plan is dropped: fragments committed for the new mix
        # must not be scored against predictions made for the old one.
        assert session.speculator._planned is None
