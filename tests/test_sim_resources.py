"""Tests for multi-server resources with bounded waiting rooms."""

import pytest

from repro.sim.core import Environment, SimulationError
from repro.sim.resources import QueueFullError, Resource


def _hold(env, resource, duration, trace=None, name=None):
    req = resource.acquire()
    yield req
    if trace is not None:
        trace.append((name, "start", env.now))
    yield env.timeout(duration)
    req.release()
    if trace is not None:
        trace.append((name, "end", env.now))


class TestResourceBasics:
    def test_capacity_validation(self):
        env = Environment()
        with pytest.raises(ValueError):
            Resource(env, 0)
        with pytest.raises(ValueError):
            Resource(env, 1, queue_limit=-1)

    def test_immediate_grant_within_capacity(self):
        env = Environment()
        res = Resource(env, 2)
        trace = []
        env.process(_hold(env, res, 5.0, trace, "a"))
        env.process(_hold(env, res, 5.0, trace, "b"))
        env.run()
        starts = [t for n, kind, t in trace if kind == "start"]
        assert starts == [0.0, 0.0]

    def test_queueing_beyond_capacity(self):
        env = Environment()
        res = Resource(env, 1)
        trace = []
        env.process(_hold(env, res, 2.0, trace, "a"))
        env.process(_hold(env, res, 2.0, trace, "b"))
        env.run()
        assert ("b", "start", 2.0) in trace

    def test_fifo_order(self):
        env = Environment()
        res = Resource(env, 1)
        trace = []
        for name in ("a", "b", "c"):
            env.process(_hold(env, res, 1.0, trace, name))
        env.run()
        starts = [n for n, kind, _ in trace if kind == "start"]
        assert starts == ["a", "b", "c"]

    def test_counts(self):
        env = Environment()
        res = Resource(env, 1)
        env.process(_hold(env, res, 1.0))
        env.process(_hold(env, res, 1.0))
        env.run()
        assert res.granted == 2
        assert res.in_service == 0
        assert res.queue_length == 0


class TestQueueLimit:
    def test_rejection_when_backlog_full(self):
        env = Environment()
        res = Resource(env, 1, queue_limit=1)
        rejected = []

        def client(name):
            req = res.acquire()
            try:
                yield req
            except QueueFullError:
                rejected.append(name)
                return
            yield env.timeout(10.0)
            req.release()

        for name in ("a", "b", "c"):
            env.process(client(name))
        env.run()
        assert rejected == ["c"]
        assert res.rejected == 1

    def test_zero_backlog_is_pure_loss(self):
        env = Environment()
        res = Resource(env, 1, queue_limit=0)
        outcomes = []

        def client(name):
            req = res.acquire()
            try:
                yield req
            except QueueFullError:
                outcomes.append((name, "rejected"))
                return
            outcomes.append((name, "served"))
            yield env.timeout(1.0)
            req.release()

        env.process(client("a"))
        env.process(client("b"))
        env.run()
        assert ("a", "served") in outcomes
        assert ("b", "rejected") in outcomes

    def test_unlimited_queue_never_rejects(self):
        env = Environment()
        res = Resource(env, 1)
        done = []

        def client(i):
            req = res.acquire()
            yield req
            yield env.timeout(0.1)
            req.release()
            done.append(i)

        for i in range(20):
            env.process(client(i))
        env.run()
        assert len(done) == 20
        assert res.rejected == 0


class TestRelease:
    def test_double_release_rejected(self):
        env = Environment()
        res = Resource(env, 1)

        def proc():
            req = res.acquire()
            yield req
            req.release()
            with pytest.raises(SimulationError):
                req.release()

        p = env.process(proc())
        env.run()
        assert p.exception is None

    def test_release_wrong_resource_rejected(self):
        env = Environment()
        a = Resource(env, 1)
        b = Resource(env, 1)

        def proc():
            req = a.acquire()
            yield req
            with pytest.raises(SimulationError):
                b.release(req)
            req.release()

        p = env.process(proc())
        env.run()
        assert p.exception is None

    def test_handover_keeps_busy_count(self):
        """When a release hands the server to a waiter, in_service must not
        dip (the server is transferred, not freed)."""
        env = Environment()
        res = Resource(env, 1)
        env.process(_hold(env, res, 1.0))
        env.process(_hold(env, res, 1.0))

        def check():
            yield env.timeout(1.5)
            assert res.in_service == 1

        env.process(check())
        env.run()

    def test_cancel_waiting_request(self):
        env = Environment()
        res = Resource(env, 1)
        env.process(_hold(env, res, 5.0))

        def canceller():
            yield env.timeout(0.1)
            req = res.acquire()
            assert res.queue_length == 1
            res.cancel(req)
            assert res.queue_length == 0

        p = env.process(canceller())
        env.run()
        assert p.exception is None


class TestUtilization:
    def test_full_utilization(self):
        env = Environment()
        res = Resource(env, 1)
        env.process(_hold(env, res, 10.0))
        env.run()
        assert res.utilization(10.0) == pytest.approx(1.0)

    def test_half_utilization(self):
        env = Environment()
        res = Resource(env, 2)
        env.process(_hold(env, res, 10.0))
        env.run()
        assert res.utilization(10.0) == pytest.approx(0.5)

    def test_reset_stats(self):
        env = Environment()
        res = Resource(env, 1)
        env.process(_hold(env, res, 5.0))
        env.run()
        res.reset_stats()
        env.run(until=10.0)
        assert res.utilization() == pytest.approx(0.0)
