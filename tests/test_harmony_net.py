"""Tests for the wire codec and the TCP Harmony server."""

import socket
import threading

import pytest

from repro.harmony.net import HarmonyTCPServer, RemoteHarmonyClient
from repro.harmony.parameter import Configuration, IntParameter
from repro.harmony.protocol import (
    ErrorReply,
    FetchReply,
    FetchRequest,
    RegisterReply,
    RegisterRequest,
    ReportReply,
    ReportRequest,
    UnregisterReply,
    UnregisterRequest,
)
from repro.harmony.server import HarmonyServer
from repro.harmony.wire import WireError, decode, encode


def _params():
    return (
        IntParameter("a", 5, 0, 10),
        IntParameter("b", 100, 0, 1000, step=100),
    )


class TestWireCodec:
    @pytest.mark.parametrize(
        "message",
        [
            RegisterRequest("c", _params(), "simplex", {"a": 3, "b": 200}),
            RegisterRequest("c", _params()),
            RegisterReply("c", 2),
            FetchRequest("c"),
            FetchReply("c", Configuration({"a": 1, "b": 100})),
            ReportRequest("c", 123.5),
            ReportReply("c", 7),
            UnregisterRequest("c"),
            UnregisterReply("c", Configuration({"a": 2, "b": 300})),
            UnregisterReply("c", None),
            ErrorReply("c", "boom"),
        ],
    )
    def test_round_trip(self, message):
        decoded = decode(encode(message))
        assert type(decoded) is type(message)
        assert decoded == message

    def test_single_line(self):
        line = encode(RegisterRequest("c", _params()))
        assert "\n" not in line

    def test_invalid_json_rejected(self):
        with pytest.raises(WireError):
            decode("{not json")

    def test_non_object_rejected(self):
        with pytest.raises(WireError):
            decode("[1,2]")

    def test_missing_client_id_rejected(self):
        with pytest.raises(WireError):
            decode('{"type": "FetchRequest"}')

    def test_unknown_type_rejected(self):
        with pytest.raises(WireError):
            decode('{"type": "Nope", "client_id": "c"}')

    def test_bad_performance_rejected(self):
        with pytest.raises(WireError):
            decode('{"type": "ReportRequest", "client_id": "c", "performance": "fast"}')

    def test_bad_configuration_value_rejected(self):
        with pytest.raises(WireError):
            decode(
                '{"type": "FetchReply", "client_id": "c", '
                '"configuration": {"a": 1.5}}'
            )

    def test_bad_parameter_rejected(self):
        with pytest.raises(WireError):
            decode(
                '{"type": "RegisterRequest", "client_id": "c", '
                '"parameters": [{"name": "a"}]}'
            )

    def test_empty_parameters_rejected(self):
        with pytest.raises(WireError):
            decode(
                '{"type": "RegisterRequest", "client_id": "c", "parameters": []}'
            )


class TestTcpServer:
    def test_full_client_lifecycle(self):
        server = HarmonyTCPServer(HarmonyServer(seed=2))
        with server.running() as (host, port):
            with RemoteHarmonyClient(host, port, "app") as client:
                dim = client.register(_params())
                assert dim == 2
                for _ in range(15):
                    cfg = client.fetch()
                    client.report(float(-abs(cfg["a"] - 8) - abs(cfg["b"] - 700) / 100))
                assert client.iterations == 15
                best = client.unregister()
                assert best is not None
                assert abs(best["a"] - 8) <= 8  # it searched

    def test_server_error_surfaces_to_client(self):
        server = HarmonyTCPServer(HarmonyServer())
        with server.running() as (host, port):
            with RemoteHarmonyClient(host, port, "ghost") as client:
                with pytest.raises(RuntimeError, match="unknown client"):
                    client.fetch()

    def test_malformed_line_gets_error_reply(self):
        server = HarmonyTCPServer(HarmonyServer())
        with server.running() as (host, port):
            with socket.create_connection((host, port), timeout=5.0) as sock:
                sock.sendall(b"this is not json\n")
                reply = decode(sock.makefile().readline().strip())
                assert isinstance(reply, ErrorReply)
                assert "WireError" in reply.error

    def test_two_concurrent_clients_tune_independently(self):
        server = HarmonyTCPServer(HarmonyServer(seed=3))
        results = {}

        def run(name, target):
            with RemoteHarmonyClient(*server.address, name) as client:
                client.register(_params())
                for _ in range(20):
                    cfg = client.fetch()
                    client.report(float(-abs(cfg["a"] - target)))
                results[name] = client.unregister()

        with server.running():
            threads = [
                threading.Thread(target=run, args=("left", 2)),
                threading.Thread(target=run, args=("right", 9)),
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=30)
        assert set(results) == {"left", "right"}
        assert abs(results["left"]["a"] - 2) <= abs(results["left"]["a"] - 9)

    def test_session_survives_reconnect(self):
        """Dropping the TCP connection must not lose the tuning session."""
        server = HarmonyTCPServer(HarmonyServer(seed=4))
        with server.running() as (host, port):
            c1 = RemoteHarmonyClient(host, port, "app")
            c1.register(_params())
            cfg = c1.fetch()
            c1.report(5.0)
            c1.close()
            # Reconnect under the same client id: state is still there.
            with RemoteHarmonyClient(host, port, "app") as c2:
                c2.fetch()
                assert c2.report(6.0) == 2  # second completed iteration

    def test_port_zero_binds_free_port(self):
        server = HarmonyTCPServer(HarmonyServer())
        with server.running() as (host, port):
            assert port > 0


class TestWireEdgeCases:
    def test_fetch_reply_with_null_configuration(self):
        decoded = decode('{"type": "FetchReply", "client_id": "c", '
                         '"configuration": null}')
        assert isinstance(decoded, FetchReply)
        assert decoded.configuration is None

    def test_report_integer_performance_accepted(self):
        decoded = decode('{"type": "ReportRequest", "client_id": "c", '
                         '"performance": 42}')
        assert decoded.performance == 42.0

    def test_boolean_performance_rejected(self):
        with pytest.raises(WireError):
            decode('{"type": "ReportRequest", "client_id": "c", '
                   '"performance": true}')

    def test_register_default_strategy(self):
        decoded = decode(
            '{"type": "RegisterRequest", "client_id": "c", "parameters": '
            '[{"name": "x", "default": 1, "low": 0, "high": 5}]}'
        )
        assert decoded.strategy == "simplex"
        assert decoded.parameters[0].step == 1


class TestReportSequenceDedupe:
    """Idempotent reports: a resend after a lost ack must not be told to
    the strategy twice (driven through the message interface)."""

    def _server(self):
        server = HarmonyServer(seed=11)
        server.handle(RegisterRequest("c", _params()))
        return server

    def test_seq_round_trips_on_the_wire(self):
        message = ReportRequest("c", 1.5, seq=3)
        assert decode(encode(message)) == message
        assert decode(encode(ReportRequest("c", 1.5))).seq is None

    def test_boolean_seq_rejected(self):
        with pytest.raises(WireError):
            decode('{"type": "ReportRequest", "client_id": "c", '
                   '"performance": 1.0, "seq": true}')

    def test_duplicate_report_answered_from_cache(self):
        server = self._server()
        server.handle(FetchRequest("c"))
        first = server.handle(ReportRequest("c", 5.0, seq=1))
        assert first.iterations == 1
        # The retry resends the identical request: same reply, no double
        # tell (the iteration counter does not advance).
        resent = server.handle(ReportRequest("c", 5.0, seq=1))
        assert resent == first

    def test_next_seq_counts_normally(self):
        server = self._server()
        server.handle(FetchRequest("c"))
        server.handle(ReportRequest("c", 5.0, seq=1))
        server.handle(FetchRequest("c"))
        assert server.handle(ReportRequest("c", 6.0, seq=2)).iterations == 2

    def test_fresh_client_reusing_seq_is_not_a_resend(self):
        # A new client object under the same session id restarts its seq
        # numbering — but it fetched first, which a true resend never
        # does, so its report must count.
        server = self._server()
        server.handle(FetchRequest("c"))
        server.handle(ReportRequest("c", 5.0, seq=1))
        server.handle(FetchRequest("c"))
        assert server.handle(ReportRequest("c", 6.0, seq=1)).iterations == 2

    def test_unsequenced_reports_never_dedupe(self):
        server = self._server()
        server.handle(FetchRequest("c"))
        assert server.handle(ReportRequest("c", 5.0)).iterations == 1
        server.handle(FetchRequest("c"))
        assert server.handle(ReportRequest("c", 5.0)).iterations == 2


class TestClientResilience:
    def test_close_is_idempotent(self):
        server = HarmonyTCPServer(HarmonyServer())
        with server.running() as (host, port):
            client = RemoteHarmonyClient(host, port, "app")
            client.close()
            client.close()  # double close must be a no-op
            assert client._sock is None and client._file is None

    def test_close_after_server_gone(self):
        server = HarmonyTCPServer(HarmonyServer())
        with server.running() as (host, port):
            client = RemoteHarmonyClient(host, port, "app")
        client.close()  # server already down: still silent

    def test_connect_failure_does_not_leak(self):
        # Grab a port that nothing listens on.
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        with pytest.raises(OSError):
            RemoteHarmonyClient("127.0.0.1", port, "app", timeout=0.5)

    def test_retry_reconnects_and_dedupes_the_report(self):
        sleeps = []
        server = HarmonyTCPServer(HarmonyServer(seed=6))
        with server.running() as (host, port):
            client = RemoteHarmonyClient(
                host, port, "app", sleep=sleeps.append
            )
            client.register(_params())
            client.fetch()
            # Sever the transport under the client's feet.
            client._sock.shutdown(socket.SHUT_RDWR)
            # The report retries over a fresh connection; whether or not
            # the first copy reached the server, sequence numbering makes
            # the outcome exactly one completed iteration.
            assert client.report(2.0) == 1
            assert client.retries == 1
            assert sleeps == [1]  # backoff_delay(1)
            # The session kept going.
            client.fetch()
            assert client.report(3.0) == 2
            client.close()

    def test_retries_exhausted_raises(self):
        server = HarmonyTCPServer(HarmonyServer())
        with server.running() as (host, port):
            client = RemoteHarmonyClient(host, port, "app", max_retries=0)
            client.register(_params())
            # Sever the transport; with retries disabled the failure
            # surfaces instead of reconnecting.
            client._sock.shutdown(socket.SHUT_RDWR)
            with pytest.raises(OSError):
                client.fetch()
            assert client.retries == 0
            client.close()

    def test_negative_max_retries_rejected(self):
        with pytest.raises(ValueError):
            RemoteHarmonyClient("127.0.0.1", 1, "app", max_retries=-1)


class TestStaleClientCleanup:
    def test_quiet_client_is_reaped(self):
        server = HarmonyTCPServer(HarmonyServer(seed=8), stale_after=4)
        with server.running() as (host, port):
            with RemoteHarmonyClient(host, port, "quiet") as quiet:
                quiet.register(_params())
            with RemoteHarmonyClient(host, port, "busy") as busy:
                busy.register(_params())
                for _ in range(6):
                    busy.fetch()
                    busy.report(1.0)
                assert "quiet" in server.reaped
                assert "quiet" not in server.harmony.sessions
                # The busy client is untouched.
                busy.fetch()
                assert busy.report(2.0) == 7

    def test_cleanup_disabled_by_default(self):
        server = HarmonyTCPServer(HarmonyServer())
        try:
            assert server.stale_after is None
            assert server.cleanup_stale() == []
        finally:
            server.server_close()

    def test_stale_after_validated(self):
        with pytest.raises(ValueError):
            HarmonyTCPServer(HarmonyServer(), stale_after=0)

    def test_reaping_happens_during_dispatch(self):
        server = HarmonyTCPServer(HarmonyServer(seed=9), stale_after=2)
        with server.running() as (host, port):
            with RemoteHarmonyClient(host, port, "a") as a:
                a.register(_params())
            with RemoteHarmonyClient(host, port, "b") as b:
                b.register(_params())
                b.fetch()
                b.report(1.0)
        # "a" aged out while "b" kept the server busy; the explicit
        # cleanup afterwards finds nothing left to do.
        assert server.reaped == ["a"]
        assert server.cleanup_stale() == []
