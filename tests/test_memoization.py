"""Measurement memoization: content-addressed caching of measurements.

The cache layer may never change numbers — a hit must return exactly the
measurement the backend would have produced — and its fingerprints must
treat content-equal scenarios as equal while separating anything that
could change a measurement.
"""

import pytest

from repro.cluster.topology import ClusterSpec
from repro.model.analytic import AnalyticBackend
from repro.model.base import (
    MeasurementCache,
    MemoizedBackend,
    Scenario,
)
from repro.tpcw.interactions import BROWSING_MIX, SHOPPING_MIX
from repro.util.rng import derive_seed


@pytest.fixture(scope="module")
def scenario():
    cluster = ClusterSpec.three_tier(1, 1, 1)
    return Scenario(cluster=cluster, mix=SHOPPING_MIX, population=500)


@pytest.fixture(scope="module")
def default_config(scenario):
    return scenario.cluster.default_configuration()


class TestScenarioFingerprint:
    def test_content_equal_scenarios_share_fingerprints(self, scenario):
        rebuilt = Scenario(
            cluster=ClusterSpec.three_tier(1, 1, 1),
            mix=SHOPPING_MIX,
            population=500,
        )
        assert rebuilt.fingerprint() == scenario.fingerprint()

    def test_cluster_name_is_ignored(self, scenario):
        renamed = Scenario(
            cluster=ClusterSpec.three_tier(1, 1, 1, name="other"),
            mix=SHOPPING_MIX,
            population=500,
        )
        assert renamed.fingerprint() == scenario.fingerprint()

    @pytest.mark.parametrize(
        "change",
        [
            dict(population=501),
            dict(mix=BROWSING_MIX),
            dict(cluster=ClusterSpec.three_tier(1, 2, 1)),
        ],
    )
    def test_content_changes_change_fingerprint(self, scenario, change):
        kwargs = dict(
            cluster=scenario.cluster,
            mix=scenario.mix,
            population=scenario.population,
        )
        kwargs.update(change)
        assert Scenario(**kwargs).fingerprint() != scenario.fingerprint()


class TestMeasurementCache:
    def test_hit_returns_stored_measurement(self, scenario, default_config):
        cache = MeasurementCache()
        backend = AnalyticBackend()
        m = backend.measure(scenario, default_config, seed=4)
        cache.store(scenario, default_config, 4, m)
        assert cache.lookup(scenario, default_config, 4) is m
        assert cache.lookup(scenario, default_config, 5) is None
        stats = cache.stats
        assert (stats.hits, stats.misses, stats.size) == (1, 1, 1)
        assert stats.hit_rate == 0.5

    def test_lru_eviction(self, scenario, default_config):
        cache = MeasurementCache(max_entries=2)
        backend = AnalyticBackend()
        m = backend.measure(scenario, default_config, seed=0)
        for seed in (1, 2, 3):
            cache.store(scenario, default_config, seed, m)
        assert len(cache) == 2
        assert cache.lookup(scenario, default_config, 1) is None  # evicted
        assert cache.lookup(scenario, default_config, 3) is m


class TestMemoizedBackend:
    def test_repeat_measure_served_from_cache(self, scenario, default_config):
        memo = MemoizedBackend(AnalyticBackend())
        first = memo.measure(scenario, default_config, seed=7)
        again = memo.measure(scenario, default_config, seed=7)
        assert again is first
        assert memo.stats.hits == 1

    def test_hit_equals_fresh_measurement(self, scenario, default_config):
        memo = MemoizedBackend(AnalyticBackend())
        fresh = AnalyticBackend().measure(scenario, default_config, seed=7)
        memo.measure(scenario, default_config, seed=7)
        assert memo.measure(scenario, default_config, seed=7) == fresh

    def test_disabled_wrapper_is_transparent(self, scenario, default_config):
        memo = MemoizedBackend(AnalyticBackend(), enabled=False)
        a = memo.measure(scenario, default_config, seed=7)
        b = memo.measure(scenario, default_config, seed=7)
        assert a == b
        assert a is not b  # nothing cached
        assert memo.stats.lookups == 0

    def test_batch_forwards_only_misses(self, scenario, default_config):
        memo = MemoizedBackend(AnalyticBackend())
        warm = memo.measure(scenario, default_config, seed=1)
        requests = [(default_config, 1), (default_config, 2), (default_config, 1)]
        results = memo.measure_batch(scenario, requests)
        assert results[0] is warm and results[2] is warm
        assert memo.stats.misses == 2  # the seed-1 warmup and seed 2


class TestAnalyticBatchPath:
    def test_measure_batch_bit_identical_to_serial(self, scenario):
        space = scenario.cluster.full_space()
        import numpy as np

        configs = [
            space.random_configuration(
                np.random.default_rng(derive_seed(3, "cfg", i))
            )
            for i in range(6)
        ]
        requests = [
            (cfg, derive_seed(3, "seed", i)) for i, cfg in enumerate(configs)
        ]
        # Duplicate one configuration under a fresh seed: the batch path
        # dedups solves but must still apply per-seed noise.
        requests.append((configs[0], derive_seed(3, "seed", 99)))
        serial = [
            AnalyticBackend().measure(scenario, cfg, seed=seed)
            for cfg, seed in requests
        ]
        batch = AnalyticBackend().measure_batch(scenario, requests)
        for a, b in zip(serial, batch):
            assert b == a

    def test_solution_cache_collapses_noise_repeats(self, scenario, default_config):
        backend = AnalyticBackend()
        requests = [(default_config, seed) for seed in range(5)]
        results = backend.measure_batch(scenario, requests)
        stats = backend.solution_cache_stats
        assert stats.misses == 1  # one solve serves all five noise draws
        assert len({r.wips for r in results}) == 5  # noise still per-seed
        backend.measure_batch(scenario, [(default_config, 9)])
        assert backend.solution_cache_stats.hits == 1  # reused across calls

    def test_solution_cache_disabled(self, scenario, default_config):
        backend = AnalyticBackend(solution_cache_size=0)
        backend.measure(scenario, default_config, seed=0)
        backend.measure(scenario, default_config, seed=1)
        stats = backend.solution_cache_stats
        assert stats.lookups == 0 and stats.size == 0
