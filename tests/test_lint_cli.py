"""The ``repro lint`` subcommand, and the repository's own lint gate."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.cli import main

REPO_ROOT = Path(__file__).parents[1]

BAD_SOURCE = "import numpy as np\n_x = np.random.rand()\n"
CLEAN_SOURCE = "def double(x):\n    return 2 * x\n"


def test_lint_rules_listing(capsys):
    assert main(["lint", "--rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in ("RPL001", "RPL002", "RPL003", "RPL004",
                    "RPL005", "RPL006", "RPL007", "RPL008"):
        assert rule_id in out


def test_lint_clean_file_exits_zero(tmp_path, capsys):
    target = tmp_path / "clean.py"
    target.write_text(CLEAN_SOURCE)
    assert main(["lint", "--root", str(tmp_path), str(target)]) == 0
    assert "0 findings" in capsys.readouterr().out


def test_lint_violation_exits_nonzero(tmp_path, capsys):
    target = tmp_path / "src" / "repro" / "des" / "servers.py"
    target.parent.mkdir(parents=True)
    target.write_text(BAD_SOURCE)
    assert main(["lint", "--root", str(tmp_path), str(target)]) == 1
    out = capsys.readouterr().out
    assert "RPL001" in out


def test_lint_json_format(tmp_path, capsys):
    target = tmp_path / "src" / "repro" / "des" / "servers.py"
    target.parent.mkdir(parents=True)
    target.write_text(BAD_SOURCE)
    assert main(
        ["lint", "--root", str(tmp_path), "--format", "json", str(target)]
    ) == 1
    doc = json.loads(capsys.readouterr().out)
    assert doc["version"] == 1
    assert doc["summary"]["ok"] is False
    assert doc["summary"]["by_rule"] == {"RPL001": 1}
    (finding,) = doc["findings"]
    assert finding["path"] == "src/repro/des/servers.py"


def test_lint_select_and_ignore(tmp_path, capsys):
    target = tmp_path / "mixed.py"
    target.write_text("import numpy as np\ndef f(xs=[]):\n    return np.random.rand()\n")
    assert main(
        ["lint", "--root", str(tmp_path), "--select", "RPL005", str(target)]
    ) == 1
    assert "RPL001" not in capsys.readouterr().out
    assert main(
        ["lint", "--root", str(tmp_path),
         "--ignore", "RPL001,RPL005", str(target)]
    ) == 0


def test_lint_unknown_rule_id_is_rejected(tmp_path):
    with pytest.raises(SystemExit):
        main(["lint", "--root", str(tmp_path), "--select", "RPL999"])


def test_lint_default_path_is_src(tmp_path, capsys):
    src = tmp_path / "src"
    src.mkdir()
    (src / "ok.py").write_text(CLEAN_SOURCE)
    (tmp_path / "unlinted.py").write_text(BAD_SOURCE)  # outside src/
    assert main(["lint", "--root", str(tmp_path)]) == 0
    assert "1 file checked" in capsys.readouterr().out


def test_repository_lints_clean(capsys):
    """The acceptance gate: `repro lint` on this repository exits 0."""
    assert main(["lint", "--root", str(REPO_ROOT)]) == 0
    assert "0 findings" in capsys.readouterr().out
