"""The ``repro lint`` subcommand, and the repository's own lint gate."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.cli import main

REPO_ROOT = Path(__file__).parents[1]

BAD_SOURCE = "import numpy as np\n_x = np.random.rand()\n"
CLEAN_SOURCE = "def double(x):\n    return 2 * x\n"


def test_lint_rules_listing(capsys):
    assert main(["lint", "--rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in ("RPL001", "RPL002", "RPL003", "RPL004",
                    "RPL005", "RPL006", "RPL007", "RPL008",
                    "RPL101", "RPL102", "RPL103", "RPL104",
                    "RPL105", "RPL106", "RPL107", "RPL108"):
        assert rule_id in out
    # The runtime sanitizer family is listed alongside the static rules.
    for rule_id in ("RPL151", "RPL152", "RPL153", "RPL154"):
        assert rule_id in out


def test_lint_clean_file_exits_zero(tmp_path, capsys):
    target = tmp_path / "clean.py"
    target.write_text(CLEAN_SOURCE)
    assert main(["lint", "--root", str(tmp_path), str(target)]) == 0
    assert "0 findings" in capsys.readouterr().out


def test_lint_violation_exits_nonzero(tmp_path, capsys):
    target = tmp_path / "src" / "repro" / "des" / "servers.py"
    target.parent.mkdir(parents=True)
    target.write_text(BAD_SOURCE)
    assert main(["lint", "--root", str(tmp_path), str(target)]) == 1
    out = capsys.readouterr().out
    assert "RPL001" in out


def test_lint_json_format(tmp_path, capsys):
    target = tmp_path / "src" / "repro" / "des" / "servers.py"
    target.parent.mkdir(parents=True)
    target.write_text(BAD_SOURCE)
    assert main(
        ["lint", "--root", str(tmp_path), "--format", "json", str(target)]
    ) == 1
    doc = json.loads(capsys.readouterr().out)
    assert doc["version"] == 1
    assert doc["summary"]["ok"] is False
    assert doc["summary"]["by_rule"] == {"RPL001": 1}
    (finding,) = doc["findings"]
    assert finding["path"] == "src/repro/des/servers.py"


def test_lint_select_and_ignore(tmp_path, capsys):
    target = tmp_path / "mixed.py"
    target.write_text("import numpy as np\ndef f(xs=[]):\n    return np.random.rand()\n")
    assert main(
        ["lint", "--root", str(tmp_path), "--select", "RPL005", str(target)]
    ) == 1
    assert "RPL001" not in capsys.readouterr().out
    assert main(
        ["lint", "--root", str(tmp_path),
         "--ignore", "RPL001,RPL005", str(target)]
    ) == 0


def test_lint_family_prefix_select(tmp_path, capsys):
    # RPL005 (mutable default) plus RPL101 (unguarded shared mutation).
    target = tmp_path / "src" / "repro" / "parallel" / "shared.py"
    target.parent.mkdir(parents=True)
    target.write_text(
        "import threading\n"
        "def f(xs=[]):\n"
        "    return xs\n"
        "class S:\n"
        "    def __init__(self):\n"
        "        self._lock = threading.Lock()\n"
        "        self.n = 0\n"
        "    def bump(self):\n"
        "        self.n += 1\n"
    )
    # Selecting the concurrency family alone hides the RPL00x finding.
    assert main(
        ["lint", "--root", str(tmp_path), "--select", "RPL1", str(target)]
    ) == 1
    out = capsys.readouterr().out
    assert "RPL101" in out and "RPL005" not in out
    # Ignoring the whole family by prefix removes it again.
    assert main(
        ["lint", "--root", str(tmp_path),
         "--select", "RPL1", "--ignore", "RPL10", str(target)]
    ) == 0


def test_lint_unknown_rule_id_is_rejected(tmp_path):
    # Exit code 2: usage error, distinct from 1 (findings).
    with pytest.raises(SystemExit) as excinfo:
        main(["lint", "--root", str(tmp_path), "--select", "RPL999"])
    assert excinfo.value.code == 2


def test_lint_default_path_is_src(tmp_path, capsys):
    src = tmp_path / "src"
    src.mkdir()
    (src / "ok.py").write_text(CLEAN_SOURCE)
    (tmp_path / "unlinted.py").write_text(BAD_SOURCE)  # outside src/
    assert main(["lint", "--root", str(tmp_path)]) == 0
    assert "1 file checked" in capsys.readouterr().out


def test_repository_lints_clean(capsys):
    """The acceptance gate: `repro lint` on this repository exits 0."""
    assert main(["lint", "--root", str(REPO_ROOT)]) == 0
    assert "0 findings" in capsys.readouterr().out
