# lint-path: src/repro/util/example_blocking.py
"""RPL104: pool/solver/future calls made while holding the lock."""
import threading


def run_one(x):
    return x


class FleetFrontend:
    def __init__(self):
        self._lock = threading.Lock()
        self._jobs = []

    def flush(self, pool, backend):
        with self._lock:
            mapped = list(pool.map(run_one, self._jobs))
            future = pool.submit(run_one, 0)
            extra = future.result()
            solutions = backend.solve(self._jobs)
        return mapped, extra, solutions
