# lint-path: src/repro/experiments/example_fleet_errors.py
"""RPL108: dead-worker failures dropped on the floor."""
from concurrent.futures.process import BrokenProcessPool


def run_one(spec):
    return spec


def collect(pool, specs):
    results = []
    try:
        results = list(pool.map(run_one, specs))
    except BrokenProcessPool:
        pass
    for spec in specs:
        try:
            results.append(pool.submit(run_one, spec).result())
        except Exception:
            return None
    return results
