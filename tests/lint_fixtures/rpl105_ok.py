# lint-path: src/repro/experiments/example_payload_clean.py
"""RPL105 negative: module-level callables and plain data as cargo."""
from repro.parallel.plan import RunSpec


def run_tuner(seed):
    return seed


def scale(value):
    return value * 2


def build_plan(pool, seeds):
    specs = [
        RunSpec(key=seed, fn=run_tuner, kwargs={"seed": seed, "hook": scale})
        for seed in seeds
    ]
    future = pool.submit(run_tuner, 7)
    return specs, future
