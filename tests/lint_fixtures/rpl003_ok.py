# lint-path: src/repro/util/serialization.py
"""RPL003 negative fixture: explicitly ordered iteration."""


def dump(config, extras):
    parts = []
    for key, value in sorted(config.items()):
        parts.append(f"{key}={value}")
    tags = [t for t in sorted(set(extras))]
    rows = [r for r in config_rows(config)]  # plain call: no view involved
    return parts, tags, rows


def config_rows(config):
    return sorted(config.items())
