# lint-path: src/repro/cluster/example.py
"""RPL007 suppression fixture (e.g. a deliberately narrowed study range).

The pragma must sit on the line the call starts on.
"""
from repro.harmony.parameter import IntParameter

# An ablation uses a truncated range on purpose:
NARROW = IntParameter("cache_mem", default=8, low=4, high=16)  # repro: noqa[RPL007]
