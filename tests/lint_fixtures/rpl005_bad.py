# lint-path: src/repro/anywhere/example.py
"""RPL005 positive fixture: mutable defaults shared across calls."""


def collect(item, bucket=[]):
    bucket.append(item)
    return bucket


def label(item, *, tags={}, seen=set()):
    return item, tags, seen


def build(rows=list()):
    return rows
