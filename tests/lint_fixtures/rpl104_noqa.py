# lint-path: src/repro/util/example_blocking_bootstrap.py
"""RPL104 suppression: one-time bring-up with no possible contention."""
import threading


def run_one(x):
    return x


class Bootstrapper:
    def __init__(self):
        self._lock = threading.Lock()
        self._seed = None

    def bootstrap(self, pool):
        with self._lock:
            # One-time bring-up: no other thread holds a reference yet.
            self._seed = pool.submit(run_one, 0).result()  # repro: noqa[RPL104]
        return self._seed
