# lint-path: src/repro/model/example.py
"""RPL004 positive fixture: exact float equality in solver code."""


def converged(residual, rate):
    if residual == 0.5:
        return True
    if rate != -1.0:
        return False
    return 2.5 == residual
