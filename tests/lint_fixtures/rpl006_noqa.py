# lint-path: src/repro/experiments/example.py
"""RPL006 suppression fixture (e.g. a thread-pool submit, which can
take a closure because nothing crosses a process boundary)."""


def submit_all(thread_pool, seeds):
    return [
        thread_pool.submit(lambda s=s: s + 1)  # repro: noqa[RPL006]
        for s in seeds
    ]
