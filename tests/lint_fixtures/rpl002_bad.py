# lint-path: src/repro/sim/example.py
"""RPL002 positive fixture: host-clock reads in a deterministic subsystem."""
import time
from datetime import datetime


def step():
    started = time.time()
    mark = time.perf_counter()
    stamp = datetime.now()
    return started, mark, stamp
