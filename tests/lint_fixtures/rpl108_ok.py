# lint-path: src/repro/experiments/example_fleet_errors_retry.py
"""RPL108 negative: rebuild the fleet and retry on worker death."""
from concurrent.futures.process import BrokenProcessPool


def run_one(spec):
    return spec


def collect(pool, rebuild, specs):
    try:
        return list(pool.map(run_one, specs))
    except BrokenProcessPool:
        pool = rebuild()
        return list(pool.map(run_one, specs))
