# lint-path: src/repro/util/example_lock_order_waived.py
"""RPL103 suppression: an inversion argued safe (different instances)."""
import threading


class Router:
    def __init__(self):
        self._inbox = threading.Lock()
        self._outbox = threading.Lock()

    def forward(self):
        with self._inbox:
            with self._outbox:
                pass

    def bounce(self):
        with self._outbox:
            # The two paths are only ever taken on disjoint instances.
            with self._inbox:  # repro: noqa[RPL103]
                pass
