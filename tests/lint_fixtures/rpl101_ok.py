# lint-path: src/repro/parallel/example_state_guarded.py
"""RPL101 negative: every shared mutation happens under the lock."""
import threading


class GuardedCounters:
    def __init__(self):
        self._lock = threading.Lock()
        self._counts = {}
        self.total = 0

    def record(self, key, value):
        with self._lock:
            self.total += value
            self._counts[key] = value

    def snapshot(self):
        with self._lock:
            return dict(self._counts)


class PlainAccumulator:
    """No lock declared, so instances are not shared; free mutation."""

    def __init__(self):
        self.values = []

    def push(self, value):
        self.values.append(value)
