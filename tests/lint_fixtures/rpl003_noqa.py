# lint-path: src/repro/util/serialization.py
"""RPL003 suppression fixture."""


def dump(config):
    # Insertion order is canonical here by construction.
    return [k for k in config.keys()]  # repro: noqa[RPL003]
