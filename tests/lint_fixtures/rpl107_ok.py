# lint-path: src/repro/experiments/example_batch_sorted.py
"""RPL107 negative: batch inputs pass through sorted(...) first."""


def plan_solves(backend, pool, tasks, worker):
    first = backend.solve_tasks_multi(sorted(set(tasks)))
    second = backend.measure_batch(sorted(tasks.keys()))
    third = pool.map(worker, sorted({1, 2, 3}))
    fourth = backend.solve_mva_batch(list(tasks))
    return first, second, third, fourth
