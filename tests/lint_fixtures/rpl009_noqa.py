# lint-path: src/repro/experiments/example.py
"""RPL009 suppression fixture."""
import json


def save(payload, result_path):
    with open(result_path, "w") as fh:  # repro: noqa[RPL009] -- debug dump
        json.dump(payload, fh)  # repro: noqa[RPL009] -- debug dump
