# lint-path: src/repro/anywhere/example.py
"""RPL003 positive fixture: fingerprint function in a generic path."""
import hashlib


def fingerprint(payload):
    h = hashlib.sha256()
    for key in payload.keys():  # inside a fingerprint function: flagged
        h.update(repr((key, payload[key])).encode())
    return h.hexdigest()


def unrelated(payload):
    # Outside serialization paths and fingerprint functions: not flagged.
    return [key for key in payload.keys()]
