# lint-path: src/repro/anywhere/example.py
"""RPL008 suppression fixture."""


def best_effort_cleanup(path):
    try:
        path.unlink()
    except Exception:  # repro: noqa[RPL008] -- cleanup is best-effort
        pass
