# lint-path: src/repro/util/serialization.py
"""RPL003 positive fixture: unordered iteration in a serialization path."""


def dump(config, extras):
    parts = []
    for key, value in config.items():  # dict view, unsorted
        parts.append(f"{key}={value}")
    tags = [t for t in set(extras)]  # set(...) call
    flags = {f for f in {"a", "b"}}  # set literal
    return parts, tags, flags
