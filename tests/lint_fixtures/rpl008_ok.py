# lint-path: src/repro/anywhere/example.py
"""RPL008 negative fixture: narrow catches, handled broad catches."""
import math


def solve(solver, log):
    try:
        return solver.run()
    except ValueError:
        return math.nan  # explicit penalty for infeasible configurations


def probe(solver, log):
    try:
        return solver.run()
    except Exception as exc:
        log.warning("solver failed: %s", exc)  # reported, not swallowed
        raise
