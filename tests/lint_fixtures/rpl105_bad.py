# lint-path: src/repro/experiments/example_payload.py
"""RPL105: unpicklable cargo inside cross-process payloads."""
from concurrent.futures import ProcessPoolExecutor

from repro.parallel.plan import RunSpec


def run_tuner(seed):
    return seed


def build_plan(pool, seeds):
    def scale(value):
        return value * 2

    class LocalPolicy:
        pass

    specs = [
        RunSpec(key=seed, fn=run_tuner, kwargs={"seed": seed, "hook": scale})
        for seed in seeds
    ]
    specs.append(
        RunSpec(key=-1, fn=run_tuner, kwargs={"policy": LocalPolicy()})
    )
    future = pool.submit(run_tuner, lambda: None)
    worker_pool = ProcessPoolExecutor(initializer=scale, initargs=(1,))
    return specs, future, worker_pool
