# lint-path: src/repro/des/example.py
"""RPL001 negative fixture: label-derived streams only."""
from numpy.random import default_rng

from repro.util.rng import RngFactory, derive_seed, spawn_rng


def draw(seed):
    rng = spawn_rng(seed, "fixture", 0)
    factory = RngFactory(seed)
    other = factory.get("browser", 1)
    derived = default_rng(derive_seed(seed, "explicit"))  # call-derived seed
    local = min(3, 5)  # a name called `random` would not resolve either
    return rng, other, derived, local
