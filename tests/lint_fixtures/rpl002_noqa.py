# lint-path: src/repro/sim/example.py
"""RPL002 suppression fixture."""
import time


def step():
    return time.perf_counter()  # repro: noqa[RPL002] -- progress display only
