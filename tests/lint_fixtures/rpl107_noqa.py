# lint-path: src/repro/experiments/example_batch_rekeyed.py
"""RPL107 suppression: results re-keyed downstream, order immaterial."""


def replay(backend, tasks):
    # Replay path: results are re-keyed by task id downstream, so batch
    # position never matters here.
    return backend.solve_tasks_multi(set(tasks))  # repro: noqa[RPL107]
