# lint-path: src/repro/anywhere/example.py
"""RPL005 negative fixture: None defaults, immutable defaults."""


def collect(item, bucket=None):
    if bucket is None:
        bucket = []
    bucket.append(item)
    return bucket


def label(item, *, tags=(), name="x", count=0):
    return item, tags, name, count
