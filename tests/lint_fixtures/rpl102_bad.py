# lint-path: src/repro/parallel/example_lazy.py
"""RPL102: check-then-set lazy initialization without holding a lock."""
import threading


class LazyBackend:
    def __init__(self):
        self._lock = threading.Lock()
        self._backend = None
        self._warmed = False

    def backend(self):
        if self._backend is None:
            self._backend = object()
        return self._backend

    def warm(self):
        if not self._warmed:
            self._warmed = True
