# lint-path: src/repro/experiments/example.py
"""RPL006 negative fixture: module-level functions only."""
from repro.parallel.plan import RunSpec


def run_one(seed):
    return seed * 2


def build_plan(seeds):
    return [RunSpec(key=s, fn=run_one, kwargs={"seed": s}) for s in seeds]


def submit_all(pool, seeds):
    return [pool.submit(run_one, s) for s in seeds]
