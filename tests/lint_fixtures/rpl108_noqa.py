# lint-path: src/repro/experiments/example_fleet_errors_probe.py
"""RPL108 suppression: a capability probe where loss means fallback."""
from concurrent.futures.process import BrokenProcessPool


def run_one(spec):
    return spec


def probe(pool):
    # Capability probe: a dead pool only means "feature unavailable";
    # the caller falls back to the inline engine on None.
    try:
        return pool.submit(run_one, 0).result()
    except BrokenProcessPool:  # repro: noqa[RPL108]
        return None
