# lint-path: src/repro/util/example_lock_order.py
"""RPL103: the two methods acquire the same locks in opposite orders."""
import threading


class Ledger:
    def __init__(self):
        self._accounts = threading.Lock()
        self._journal = threading.Lock()

    def credit(self):
        with self._accounts:
            with self._journal:
                pass

    def debit(self):
        with self._journal:
            with self._accounts:
                pass
