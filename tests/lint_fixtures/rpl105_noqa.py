# lint-path: src/repro/experiments/example_payload_inline.py
"""RPL105 suppression: a plan pinned to the in-process engine."""
from repro.parallel.plan import RunSpec


def run_tuner(seed):
    return seed


def build_inline_plan(seeds):
    def probe(value):
        return value

    # Inline-engine-only plan: these specs never cross a process
    # boundary, so the closure stays picklable-irrelevant.
    return [
        RunSpec(key=seed, fn=run_tuner, kwargs={"hook": probe})  # repro: noqa[RPL105]
        for seed in seeds
    ]
