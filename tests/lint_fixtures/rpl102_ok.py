# lint-path: src/repro/parallel/example_lazy_locked.py
"""RPL102 negative: double-checked and fully-locked lazy init pass."""
import threading


class LazyBackendOk:
    def __init__(self):
        self._lock = threading.Lock()
        self._backend = None
        self._warmed = False

    def backend(self):
        if self._backend is None:
            with self._lock:
                if self._backend is None:
                    self._backend = object()
        return self._backend

    def warm(self):
        with self._lock:
            if not self._warmed:
                self._warmed = True
