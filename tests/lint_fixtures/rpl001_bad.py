# lint-path: src/repro/des/example.py
"""RPL001 positive fixture: every RNG construction here is a violation."""
import random

import numpy as np
from numpy.random import default_rng


def draw():
    a = np.random.rand(3)  # global numpy state
    b = np.random.seed(0)  # reseeds global state
    c = random.random()  # stdlib global state
    d = random.randint(1, 6)
    e = default_rng()  # no seed at all
    f = np.random.default_rng(42)  # literal, not derived
    return a, b, c, d, e, f
