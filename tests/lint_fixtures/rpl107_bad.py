# lint-path: src/repro/experiments/example_batch.py
"""RPL107: unordered collections feeding positionally-collated batches."""


def plan_solves(backend, pool, tasks, worker):
    first = backend.solve_tasks_multi({task for task in tasks})
    second = backend.measure_batch(set(tasks))
    third = backend.solve_mva_batch(tasks.keys())
    fourth = pool.map(worker, {1, 2, 3})
    ordered = backend.solve_tasks_multi(sorted(tasks))
    return first, second, third, fourth, ordered
