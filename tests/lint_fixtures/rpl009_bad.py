# lint-path: src/repro/experiments/example.py
"""RPL009 positive fixture: bare, tearable writes to result files."""
import json
from pathlib import Path

RESULT_PATH = Path("results/example.json")


def save(payload, journal_path):
    RESULT_PATH.write_text(json.dumps(payload))
    with open(journal_path, "w") as fh:
        json.dump(payload, fh)
    with open("report.json", "wb") as fh:
        fh.write(b"{}")
