# lint-path: src/repro/experiments/example.py
"""RPL009 negative fixture: atomic helpers and read-only access."""
import json

from repro.util.serialization import atomic_write_json, atomic_write_text


def save(payload, result_path, history_path):
    atomic_write_json(result_path, payload)
    atomic_write_text(history_path, json.dumps(payload) + "\n")
    with open(result_path, "r", encoding="utf-8") as fh:  # reading is fine
        return json.load(fh)


def scratch(payload):
    with open("scratch.tmp", "w") as fh:  # not a result path
        fh.write(repr(payload))
