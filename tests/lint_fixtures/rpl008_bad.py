# lint-path: src/repro/anywhere/example.py
"""RPL008 positive fixture: swallowed failures."""


def solve(solver):
    try:
        return solver.run()
    except:  # bare: traps KeyboardInterrupt too
        return None


def probe(solver):
    try:
        return solver.run()
    except Exception:
        pass
    return None
