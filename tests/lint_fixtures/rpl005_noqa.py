# lint-path: src/repro/anywhere/example.py
"""RPL005 suppression fixture."""


def memo(key, cache={}):  # repro: noqa[RPL005] -- deliberate shared cache
    return cache.setdefault(key, key * 2)
