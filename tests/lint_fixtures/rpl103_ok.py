# lint-path: src/repro/util/example_lock_order_consistent.py
"""RPL103 negative: one global acquisition order (accounts, journal)."""
import threading


class LedgerOk:
    def __init__(self):
        self._accounts = threading.Lock()
        self._journal = threading.Lock()

    def credit(self):
        with self._accounts:
            with self._journal:
                pass

    def debit(self):
        with self._accounts:
            with self._journal:
                pass
