# lint-path: src/repro/model/example.py
"""RPL004 negative fixture: tolerances and integer equality."""
import math


def converged(residual, iterations):
    if math.isclose(residual, 0.5, abs_tol=1e-12):
        return True
    if iterations == 200:  # integer equality is fine
        return True
    return residual < 1e-9  # ordering comparisons are fine
