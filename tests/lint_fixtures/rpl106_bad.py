# lint-path: src/repro/util/example_globals.py
"""RPL106: concurrency machinery constructed at import time."""
import multiprocessing
import threading
from concurrent.futures import ProcessPoolExecutor

_LOCK = threading.Lock()
_POOL = ProcessPoolExecutor(max_workers=2)
_MANAGER = multiprocessing.Manager()


class Registry:
    _guard = threading.RLock()
