# lint-path: src/repro/cluster/example.py
"""RPL007 negative fixture: Table 3-consistent definitions."""
from repro.harmony.parameter import IntParameter


def bound():
    return 256


PARAMS = (
    IntParameter("cache_mem", default=8, low=4, high=256, step=1),
    IntParameter("max_connections", default=100, low=10, high=1000, step=10),
    # Not a Table 3 name: only internal consistency is required.
    IntParameter("custom_knob", default=5, low=1, high=64, step=1),
    # Non-literal bounds are out of static reach: skipped, not flagged.
    IntParameter("dynamic_knob", default=8, low=4, high=bound(), step=1),
)
