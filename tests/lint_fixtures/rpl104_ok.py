# lint-path: src/repro/util/example_blocking_snapshot.py
"""RPL104 negative: snapshot under the lock, block outside it."""
import threading


def run_one(x):
    return x


class FleetFrontendOk:
    def __init__(self):
        self._lock = threading.Lock()
        self._jobs = []

    def flush(self, pool, backend):
        with self._lock:
            jobs = list(self._jobs)
        mapped = list(pool.map(run_one, jobs))
        return mapped, backend.solve(jobs)
