# lint-path: src/repro/parallel/example_state_hint.py
"""RPL101 suppression: a justified last-writer-wins advisory write."""
import threading


class MostlyGuarded:
    def __init__(self):
        self._lock = threading.Lock()
        self.hint = None

    def set_hint(self, value):
        # Monotonic advisory value: last-writer-wins is acceptable here.
        self.hint = value  # repro: noqa[RPL101]
