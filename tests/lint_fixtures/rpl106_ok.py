# lint-path: src/repro/util/example_globals_lazy.py
"""RPL106 negative: lazy construction inside functions, after fork."""
import threading
from concurrent.futures import ProcessPoolExecutor

_POOL = None


def get_pool():
    global _POOL
    if _POOL is None:
        _POOL = ProcessPoolExecutor(max_workers=2)
    return _POOL


class LazyRegistry:
    def __init__(self):
        self._guard = threading.Lock()
