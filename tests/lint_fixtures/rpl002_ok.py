# lint-path: src/repro/sim/example.py
"""RPL002 negative fixture: simulated time from the event loop only."""
import time


def step(clock):
    now = clock.now()  # simulated clock object, not the time module
    duration = time.strptime("12:00", "%H:%M")  # parsing, not clock reads
    return now, duration
