# lint-path: src/repro/cluster/example.py
"""RPL007 positive fixture: parameter literals contradicting Table 3."""
from repro.harmony.parameter import IntParameter

PARAMS = (
    # Range too narrow: the ordering mix tuned cache_mem to 21.
    IntParameter("cache_mem", default=8, low=4, high=20, step=1),
    # Wrong default: Table 3's default configuration uses 100.
    IntParameter("max_connections", default=150, low=10, high=1000, step=10),
    # Default off the step grid.
    IntParameter("table_cache", default=65, low=16, high=1024, step=16),
    # Inverted bounds (internal consistency, any parameter name).
    IntParameter("custom_knob", default=5, low=10, high=4, step=1),
)
