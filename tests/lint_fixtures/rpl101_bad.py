# lint-path: src/repro/parallel/example_state.py
"""RPL101: mutating shared attributes of a lock-bearing class unguarded."""
import threading


class SharedCounters:
    """Constructs a lock, so instances are declared shared."""

    def __init__(self):
        self._lock = threading.Lock()
        self._counts = {}
        self._pending = []
        self.total = 0

    def record(self, key, value):
        self.total += value
        self._counts[key] = value

    def enqueue(self, item):
        self._pending.append(item)

    def guarded(self, value):
        with self._lock:
            self.total += value
