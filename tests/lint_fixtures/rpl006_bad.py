# lint-path: src/repro/experiments/example.py
"""RPL006 positive fixture: unpicklable callables handed to the engine."""
from repro.parallel.plan import RunSpec


def build_plan(seeds):
    def local_run(seed):
        return seed * 2

    specs = [RunSpec(key=s, fn=lambda: s, kwargs={}) for s in seeds]
    specs.append(RunSpec(0, local_run, {"seed": 0}))
    return specs


def submit_all(pool, seeds):
    return [pool.submit(lambda s: s + 1, s) for s in seeds]
