# lint-path: src/repro/des/example.py
"""RPL001 suppression fixture: violations acknowledged in place."""
import numpy as np


def draw():
    a = np.random.rand(3)  # repro: noqa[RPL001]
    b = np.random.default_rng()  # repro: noqa
    return a, b
