# lint-path: src/repro/model/example.py
"""RPL004 suppression fixture."""


def short_circuit(rate):
    # Exactness deliberate: literal zero means "input absent".
    return rate == 0.0  # repro: noqa[RPL004]
