# lint-path: src/repro/util/example_globals_registry.py
"""RPL106 suppression: a justified module-level bookkeeping lock."""
import threading

# Guards a process-local registry: held only for short ops, never
# across fork, and every worker re-creates it fresh at import.
_REGISTRY_LOCK = threading.Lock()  # repro: noqa[RPL106]
