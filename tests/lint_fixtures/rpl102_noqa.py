# lint-path: src/repro/parallel/example_lazy_benign.py
"""RPL102 suppression: an idempotent build where the race is benign."""
import threading


class RacyButBenign:
    def __init__(self):
        self._lock = threading.Lock()
        self._table = None

    def table(self):
        # Idempotent content-addressed build: double construction wastes
        # one build but both results are identical, and the fast path
        # must stay lock-free.
        if self._table is None:  # repro: noqa[RPL102]
            self._table = object()
        return self._table
