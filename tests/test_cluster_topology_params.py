"""Tests for cluster topology, parameter definitions and reconfiguration."""

import pytest

from repro.cluster.node import Role
from repro.cluster.params import (
    APP_PARAMS,
    DB_PARAMS,
    PAPER_TUNED,
    PROXY_PARAMS,
    params_for_role,
    space_for_role,
)
from repro.cluster.topology import ClusterSpec, NodePlacement


class TestParams:
    def test_counts_match_table3(self):
        assert len(PROXY_PARAMS) == 7
        assert len(APP_PARAMS) == 7
        assert len(DB_PARAMS) == 9

    def test_defaults_match_table3_column(self):
        space = space_for_role(Role.PROXY)
        assert space["cache_mem"].default == 8
        assert space["cache_swap_low"].default == 90
        assert space["maximum_object_size"].default == 4096
        app = space_for_role(Role.APP)
        assert app["minProcessors"].default == 5
        assert app["maxProcessors"].default == 20
        assert app["bufferSize"].default == 2048
        db = space_for_role(Role.DB)
        assert db["max_connections"].default == 100
        assert db["table_cache"].default == 64
        assert db["binlog_cache_size"].default == 32768

    def test_defaults_are_legal(self):
        for role in Role:
            space = space_for_role(role)
            space.validate(space.default_configuration())

    def test_paper_tuned_values_within_ranges(self):
        """Every Table 3 tuned value must be inside our tuning range (the
        ranges were chosen to contain them)."""
        all_params = {p.name: p for p in PROXY_PARAMS + APP_PARAMS + DB_PARAMS}
        for workload, values in PAPER_TUNED.items():
            for name, value in values.items():
                p = all_params[name]
                assert p.low <= value <= p.high, (workload, name, value)

    def test_params_for_role(self):
        assert params_for_role(Role.PROXY) is PROXY_PARAMS


class TestNodePlacement:
    def test_dot_in_id_rejected(self):
        with pytest.raises(ValueError):
            NodePlacement("bad.id", Role.PROXY)

    def test_empty_id_rejected(self):
        with pytest.raises(ValueError):
            NodePlacement("", Role.PROXY)


class TestClusterSpec:
    def test_three_tier(self):
        c = ClusterSpec.three_tier(2, 3, 1)
        assert c.num_nodes == 6
        assert c.tier_size(Role.PROXY) == 2
        assert c.tier_size(Role.APP) == 3
        assert c.tier_size(Role.DB) == 1
        assert c.nodes_in(Role.APP) == ["app0", "app1", "app2"]

    def test_needs_every_tier(self):
        with pytest.raises(ValueError, match="at least one"):
            ClusterSpec([NodePlacement("p0", Role.PROXY)])

    def test_duplicate_ids_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            ClusterSpec(
                [
                    NodePlacement("x", Role.PROXY),
                    NodePlacement("x", Role.APP),
                    NodePlacement("d", Role.DB),
                ]
            )

    def test_role_lookup(self):
        c = ClusterSpec.three_tier(1, 1, 1)
        assert c.role_of("db0") is Role.DB
        assert "proxy0" in c
        with pytest.raises(KeyError):
            c.role_of("ghost")

    def test_full_space_names(self):
        c = ClusterSpec.three_tier(1, 1, 1)
        space = c.full_space()
        assert space.dimension == 7 + 7 + 9
        assert "proxy0.cache_mem" in space
        assert "app0.maxProcessors" in space
        assert "db0.table_cache" in space

    def test_full_space_grows_with_nodes(self):
        c = ClusterSpec.three_tier(2, 2, 2)
        assert c.full_space().dimension == 2 * (7 + 7 + 9)

    def test_node_config_extraction(self):
        c = ClusterSpec.three_tier(1, 1, 1)
        full = c.default_configuration()
        cfg = c.node_config(full, "proxy0")
        assert cfg["cache_mem"] == 8
        assert "minProcessors" not in cfg

    def test_node_config_missing_params_rejected(self):
        c = ClusterSpec.three_tier(1, 1, 1)
        with pytest.raises(ValueError, match="missing"):
            c.node_config({"proxy0.cache_mem": 8}, "proxy0")
        with pytest.raises(KeyError):
            c.node_config(c.default_configuration(), "ghost")

    def test_tiers_mapping(self):
        c = ClusterSpec.three_tier(2, 1, 1)
        assert c.tiers() == {
            "proxy": ["proxy0", "proxy1"],
            "app": ["app0"],
            "db": ["db0"],
        }


class TestMoveNode:
    def test_move_changes_role_keeps_id(self):
        c = ClusterSpec.three_tier(2, 1, 1)
        moved = c.move_node("proxy1", Role.APP)
        assert moved.role_of("proxy1") is Role.APP
        assert moved.tier_size(Role.PROXY) == 1
        assert moved.tier_size(Role.APP) == 2
        # Original untouched.
        assert c.role_of("proxy1") is Role.PROXY

    def test_moved_node_gets_new_role_parameters(self):
        c = ClusterSpec.three_tier(2, 1, 1)
        moved = c.move_node("proxy1", Role.APP)
        space = moved.full_space()
        assert "proxy1.maxProcessors" in space
        assert "proxy1.cache_mem" not in space

    def test_cannot_empty_a_tier(self):
        c = ClusterSpec.three_tier(1, 1, 1)
        with pytest.raises(ValueError, match="last"):
            c.move_node("proxy0", Role.APP)

    def test_move_to_same_role_rejected(self):
        c = ClusterSpec.three_tier(2, 1, 1)
        with pytest.raises(ValueError, match="already"):
            c.move_node("proxy0", Role.PROXY)


class TestWorkLines:
    def test_two_lines(self):
        c = ClusterSpec.three_tier(2, 2, 2)
        lines = c.work_lines(2)
        assert set(lines) == {"line0", "line1"}
        for nodes in lines.values():
            roles = {c.role_of(n) for n in nodes}
            assert roles == set(Role)  # one of each tier

    def test_covers_all_nodes_once(self):
        c = ClusterSpec.three_tier(2, 4, 2)
        lines = c.work_lines(2)
        listed = sorted(n for nodes in lines.values() for n in nodes)
        assert listed == sorted(c.node_ids)

    def test_uneven_tiers_dealt_round_robin(self):
        c = ClusterSpec.three_tier(2, 3, 2)
        lines = c.work_lines(2)
        app_counts = sorted(
            sum(1 for n in nodes if c.role_of(n) is Role.APP)
            for nodes in lines.values()
        )
        assert app_counts == [1, 2]

    def test_too_many_lines_rejected(self):
        c = ClusterSpec.three_tier(2, 2, 1)
        with pytest.raises(ValueError, match="work lines"):
            c.work_lines(2)
        with pytest.raises(ValueError):
            c.work_lines(0)
