"""Tests for demand assembly and the analytic backend."""

import pytest

from repro.cluster.context import WorkloadContext
from repro.cluster.memory import MemoryModel
from repro.cluster.node import Role
from repro.cluster.topology import ClusterSpec
from repro.harmony.parameter import Configuration
from repro.model.analytic import AnalyticBackend
from repro.model.base import Scenario
from repro.model.demands import build_demands
from repro.model.noise import NoiseModel
from repro.tpcw.catalog import Catalog
from repro.tpcw.interactions import BROWSING_MIX, ORDERING_MIX, SHOPPING_MIX


@pytest.fixture(scope="module")
def catalog():
    return Catalog(scale=2000)


@pytest.fixture(scope="module")
def ctx(catalog):
    return WorkloadContext.for_mix(SHOPPING_MIX, catalog)


@pytest.fixture(scope="module")
def quiet_backend():
    return AnalyticBackend(noise=NoiseModel(0.0, 0.0, 0.0))


class TestBuildDemands:
    def test_structure(self, ctx):
        cluster = ClusterSpec.three_tier(1, 1, 1)
        ds = build_demands(
            cluster, cluster.default_configuration(), ctx,
            {n: 8.0 for n in cluster.node_ids},
        )
        assert len(ds.nodes) == 3
        kinds = sorted(p.kind for p in ds.pools)
        assert kinds == ["ajp", "dbconn", "http"]
        assert ds.forward_dynamic > 0
        assert ds.forward_static > 0
        assert ds.forward_total == pytest.approx(
            ds.forward_dynamic + ds.forward_static
        )

    def test_share_scaling_across_tier(self, ctx):
        """Two proxies each carry half the per-interaction proxy demand."""
        one = ClusterSpec.three_tier(1, 1, 1)
        two = ClusterSpec.three_tier(2, 1, 1)
        conc = {n: 8.0 for n in two.node_ids}
        ds1 = build_demands(one, one.default_configuration(), ctx,
                            {n: 8.0 for n in one.node_ids})
        ds2 = build_demands(two, two.default_configuration(), ctx, conc)
        p1 = next(n for n in ds1.nodes if n.role is Role.PROXY)
        p2 = next(n for n in ds2.nodes if n.role is Role.PROXY)
        assert p2.cpu == pytest.approx(p1.cpu / 2, rel=1e-6)
        assert p2.disk == pytest.approx(p1.disk / 2, rel=1e-6)

    def test_memory_penalty_inflates_demands(self, ctx):
        cluster = ClusterSpec.three_tier(1, 1, 1)
        cfg = dict(cluster.default_configuration())
        # Blow up the database's per-connection memory.
        cfg["db0.max_connections"] = 1000
        cfg["db0.join_buffer_size"] = 16777216
        cfg["db0.thread_stack"] = 1048576
        conc = {n: 8.0 for n in cluster.node_ids}
        base = build_demands(cluster, cluster.default_configuration(), ctx, conc)
        fat = build_demands(cluster, Configuration(cfg), ctx, conc)
        db_base = next(n for n in base.nodes if n.role is Role.DB)
        db_fat = next(n for n in fat.nodes if n.role is Role.DB)
        assert db_fat.memory_penalty > 1.0
        assert db_base.memory_penalty == pytest.approx(1.0)
        assert db_fat.cpu > db_base.cpu

    def test_diagnostics_present(self, ctx):
        cluster = ClusterSpec.three_tier(1, 1, 1)
        ds = build_demands(
            cluster, cluster.default_configuration(), ctx,
            {n: 8.0 for n in cluster.node_ids},
        )
        assert "proxy0.mem_hit" in ds.diagnostics
        assert "db0.table_miss" in ds.diagnostics


class TestAnalyticBackend:
    def test_deterministic_per_seed(self, quiet_backend):
        cluster = ClusterSpec.three_tier(1, 1, 1)
        sc = Scenario(cluster=cluster, mix=SHOPPING_MIX, population=300)
        cfg = cluster.default_configuration()
        a = quiet_backend.measure(sc, cfg, seed=5)
        b = quiet_backend.measure(sc, cfg, seed=5)
        assert a.wips == b.wips

    def test_noise_varies_with_seed(self):
        backend = AnalyticBackend()
        cluster = ClusterSpec.three_tier(1, 1, 1)
        sc = Scenario(cluster=cluster, mix=SHOPPING_MIX, population=300)
        cfg = cluster.default_configuration()
        a = backend.measure(sc, cfg, seed=1)
        b = backend.measure(sc, cfg, seed=2)
        assert a.wips != b.wips
        assert a.raw_wips == b.raw_wips  # model part is deterministic

    def test_throughput_monotone_then_saturating_in_population(self, quiet_backend):
        cluster = ClusterSpec.three_tier(1, 1, 1)
        cfg = cluster.default_configuration()
        wips = []
        for n in (50, 200, 500, 900, 1200):
            sc = Scenario(cluster=cluster, mix=BROWSING_MIX, population=n)
            wips.append(quiet_backend.measure(sc, cfg, seed=1).wips)
        assert all(a <= b * 1.02 for a, b in zip(wips, wips[1:]))
        # Saturation: last doubling gains little.
        assert wips[-1] / wips[-2] < 1.2

    def test_unsaturated_wips_close_to_n_over_z(self, quiet_backend):
        cluster = ClusterSpec.three_tier(1, 1, 1)
        sc = Scenario(cluster=cluster, mix=BROWSING_MIX, population=50)
        m = quiet_backend.measure(sc, cluster.default_configuration(), seed=1)
        z = sc.behavior.effective_mean_think_time
        assert m.wips == pytest.approx(50 / z, rel=0.1)

    def test_utilizations_bounded(self, quiet_backend):
        cluster = ClusterSpec.three_tier(1, 1, 1)
        sc = Scenario(cluster=cluster, mix=ORDERING_MIX, population=900)
        m = quiet_backend.measure(sc, cluster.default_configuration(), seed=1)
        for util in m.utilization.values():
            assert 0.0 <= util.cpu <= 1.0
            assert 0.0 <= util.disk <= 1.0
            assert 0.0 <= util.network <= 1.0
            assert util.memory > 0.0

    def test_browsing_bottleneck_is_proxy(self, quiet_backend):
        cluster = ClusterSpec.three_tier(1, 1, 1)
        sc = Scenario(cluster=cluster, mix=BROWSING_MIX, population=900)
        m = quiet_backend.measure(sc, cluster.default_configuration(), seed=1)
        proxy = m.utilization["proxy0"]
        app = m.utilization["app0"]
        assert proxy.max_utilization() > app.max_utilization()

    def test_ordering_loads_app_and_db(self, quiet_backend):
        cluster = ClusterSpec.three_tier(1, 1, 1)
        sc = Scenario(cluster=cluster, mix=ORDERING_MIX, population=700)
        m = quiet_backend.measure(sc, cluster.default_configuration(), seed=1)
        assert m.utilization["app0"].cpu > m.utilization["proxy0"].cpu
        assert m.utilization["db0"].max_utilization() > 0.15

    def test_adding_app_node_helps_ordering(self, quiet_backend):
        cfg_pop = 1500
        small = ClusterSpec.three_tier(2, 1, 1)
        large = ClusterSpec.three_tier(2, 2, 1)
        w_small = quiet_backend.measure(
            Scenario(cluster=small, mix=ORDERING_MIX, population=cfg_pop),
            small.default_configuration(), seed=1,
        ).wips
        w_large = quiet_backend.measure(
            Scenario(cluster=large, mix=ORDERING_MIX, population=cfg_pop),
            large.default_configuration(), seed=1,
        ).wips
        assert w_large > w_small * 1.2

    def test_cache_tuning_improves_browsing(self, quiet_backend):
        cluster = ClusterSpec.three_tier(1, 1, 1)
        sc = Scenario(cluster=cluster, mix=BROWSING_MIX, population=750)
        default = cluster.default_configuration()
        tuned = default.replace(**{
            "proxy0.cache_mem": 192,
            "proxy0.maximum_object_size_in_memory": 1024,
        })
        w_default = quiet_backend.measure(sc, default, seed=1).wips
        w_tuned = quiet_backend.measure(sc, tuned, seed=1).wips
        assert w_tuned > w_default * 1.08

    def test_tiny_thread_pool_throttles(self, quiet_backend):
        cluster = ClusterSpec.three_tier(1, 1, 1)
        sc = Scenario(cluster=cluster, mix=ORDERING_MIX, population=700)
        default = cluster.default_configuration()
        starved = default.replace(**{
            "app0.maxProcessors": 5,
            "app0.AJPmaxProcessors": 5,
        })
        w_default = quiet_backend.measure(sc, default, seed=1).wips
        w_starved = quiet_backend.measure(sc, starved, seed=1).wips
        assert w_starved < w_default * 0.9

    def test_work_lines_sum_to_total(self, quiet_backend):
        cluster = ClusterSpec.three_tier(2, 2, 2)
        lines = cluster.work_lines(2)
        sc = Scenario(
            cluster=cluster, mix=SHOPPING_MIX, population=800,
            work_lines={k: tuple(v) for k, v in lines.items()},
        )
        m = quiet_backend.measure(sc, cluster.default_configuration(), seed=1)
        assert set(m.per_line_wips) == {"line0", "line1"}
        assert sum(m.per_line_wips.values()) == pytest.approx(m.wips)

    def test_work_lines_cover_check(self):
        cluster = ClusterSpec.three_tier(2, 2, 2)
        with pytest.raises(ValueError, match="cover"):
            Scenario(
                cluster=cluster, mix=SHOPPING_MIX, population=100,
                work_lines={"line0": ("proxy0", "app0", "db0")},
            )

    def test_reconfig_diagnostics_present(self, quiet_backend):
        cluster = ClusterSpec.three_tier(1, 1, 1)
        sc = Scenario(cluster=cluster, mix=SHOPPING_MIX, population=300)
        m = quiet_backend.measure(sc, cluster.default_configuration(), seed=1)
        for node in cluster.node_ids:
            assert f"{node}.jobs" in m.diagnostics
            assert f"{node}.service_time" in m.diagnostics


class TestNoiseModel:
    def test_sigma_composition(self):
        n = NoiseModel(base_sigma=0.01, extreme_sigma=0.04, pressure_sigma=0.1)
        assert n.sigma(0.0, 1.0) == pytest.approx(0.01)
        assert n.sigma(1.0, 1.0) == pytest.approx(0.05)
        assert n.sigma(0.0, 1.5) == pytest.approx(0.06)

    def test_sigma_capped(self):
        n = NoiseModel(base_sigma=0.2, extreme_sigma=0.2, pressure_sigma=0.2,
                       max_sigma=0.25)
        assert n.sigma(1.0, 2.0) == 0.25

    def test_validation(self):
        with pytest.raises(ValueError):
            NoiseModel(base_sigma=-0.1)
        with pytest.raises(ValueError):
            NoiseModel().sigma(1.5, 1.0)
        with pytest.raises(ValueError):
            NoiseModel().sigma(0.5, 0.9)

    def test_apply_never_negative(self):
        import numpy as np

        n = NoiseModel(base_sigma=0.2, extreme_sigma=0.0, pressure_sigma=0.0)
        rng = np.random.default_rng(0)
        for _ in range(100):
            assert n.apply(10.0, 0.0, 1.0, rng) >= 0.0

    def test_apply_roughly_mean_preserving(self):
        import numpy as np

        n = NoiseModel(base_sigma=0.05, extreme_sigma=0.0, pressure_sigma=0.0)
        rng = np.random.default_rng(1)
        samples = [n.apply(100.0, 0.0, 1.0, rng) for _ in range(4000)]
        assert np.mean(samples) == pytest.approx(100.0, rel=0.01)
