"""Tests for parameters, configurations and parameter spaces."""

import numpy as np
import pytest

from repro.harmony.parameter import Configuration, IntParameter, ParameterSpace


class TestIntParameter:
    def test_validation(self):
        with pytest.raises(ValueError):
            IntParameter("", 1, 0, 10)
        with pytest.raises(ValueError):
            IntParameter("p", 1, 0, 10, step=0)
        with pytest.raises(ValueError):
            IntParameter("p", 1, 10, 0)
        with pytest.raises(ValueError):
            IntParameter("p", 11, 0, 10)  # default out of range
        with pytest.raises(ValueError):
            IntParameter("p", 1, 0, 10, step=2)  # default off grid

    def test_num_values(self):
        assert IntParameter("p", 0, 0, 10, step=1).num_values == 11
        assert IntParameter("p", 0, 0, 10, step=5).num_values == 3
        assert IntParameter("p", 0, 0, 9, step=5).num_values == 2

    def test_is_legal(self):
        p = IntParameter("p", 10, 10, 50, step=10)
        assert p.is_legal(30)
        assert not p.is_legal(35)
        assert not p.is_legal(60)
        assert not p.is_legal(0)

    def test_clamp_rounds_to_grid(self):
        p = IntParameter("p", 10, 10, 50, step=10)
        assert p.clamp(34.0) == 30
        assert p.clamp(35.1) == 40
        assert p.clamp(-5.0) == 10
        assert p.clamp(999.0) == 50

    def test_clamp_result_always_legal(self):
        p = IntParameter("p", 4, 4, 256, step=3)
        for v in (-10.0, 4.4, 100.7, 255.9, 400.0):
            assert p.is_legal(p.clamp(v))

    def test_random_legal(self):
        p = IntParameter("p", 0, 0, 100, step=7)
        rng = np.random.default_rng(0)
        values = {p.random(rng) for _ in range(200)}
        assert all(p.is_legal(v) for v in values)
        assert len(values) > 5

    def test_neighbors(self):
        p = IntParameter("p", 10, 0, 20, step=10)
        assert p.neighbors(10) == [0, 20]
        assert p.neighbors(0) == [10]
        assert p.neighbors(20) == [10]
        with pytest.raises(ValueError):
            p.neighbors(5)

    def test_extremeness(self):
        p = IntParameter("p", 50, 0, 100)
        assert p.extremeness(50) == pytest.approx(0.0)
        assert p.extremeness(0) == pytest.approx(1.0)
        assert p.extremeness(100) == pytest.approx(1.0)
        assert p.extremeness(75) == pytest.approx(0.5)

    def test_extremeness_degenerate_range(self):
        p = IntParameter("p", 5, 5, 5)
        assert p.extremeness(5) == 0.0


class TestConfiguration:
    def test_mapping_interface(self):
        c = Configuration({"a": 1, "b": 2})
        assert c["a"] == 1
        assert len(c) == 2
        assert set(c) == {"a", "b"}

    def test_hashable_and_equal(self):
        a = Configuration({"x": 1, "y": 2})
        b = Configuration({"y": 2, "x": 1})
        assert a == b
        assert hash(a) == hash(b)
        assert a == {"x": 1, "y": 2}

    def test_replace(self):
        c = Configuration({"a": 1, "b": 2})
        d = c.replace(a=9)
        assert d["a"] == 9 and d["b"] == 2
        assert c["a"] == 1  # original untouched
        with pytest.raises(KeyError):
            c.replace(zzz=1)

    def test_subset_and_merge(self):
        c = Configuration({"a": 1, "b": 2, "c": 3})
        assert dict(c.subset(["a", "c"])) == {"a": 1, "c": 3}
        merged = c.merge({"b": 20, "d": 4})
        assert merged["b"] == 20 and merged["d"] == 4

    def test_usable_as_dict_key(self):
        c1 = Configuration({"a": 1})
        c2 = Configuration({"a": 1})
        d = {c1: "value"}
        assert d[c2] == "value"


class TestParameterSpace:
    def _space(self):
        return ParameterSpace(
            [
                IntParameter("a", 5, 0, 10),
                IntParameter("b", 100, 100, 500, step=100),
            ]
        )

    def test_duplicate_names_rejected(self):
        p = IntParameter("a", 0, 0, 1)
        with pytest.raises(ValueError):
            ParameterSpace([p, p])

    def test_dimension_and_names(self):
        s = self._space()
        assert s.dimension == 2
        assert s.names == ["a", "b"]
        assert "a" in s and "zzz" not in s
        assert s["b"].step == 100

    def test_default_configuration(self):
        assert dict(self._space().default_configuration()) == {"a": 5, "b": 100}

    def test_validate(self):
        s = self._space()
        s.validate({"a": 3, "b": 300})
        with pytest.raises(ValueError):
            s.validate({"a": 3})  # missing b
        with pytest.raises(ValueError):
            s.validate({"a": 3, "b": 300, "c": 1})  # extra
        with pytest.raises(ValueError):
            s.validate({"a": 3, "b": 250})  # off grid

    def test_vector_round_trip(self):
        s = self._space()
        cfg = Configuration({"a": 7, "b": 400})
        assert s.from_vector(s.to_vector(cfg)) == cfg

    def test_from_vector_projects_to_grid(self):
        s = self._space()
        cfg = s.from_vector(np.array([3.6, 240.0]))
        assert cfg == {"a": 4, "b": 200}

    def test_from_vector_wrong_length_rejected(self):
        with pytest.raises(ValueError):
            self._space().from_vector(np.array([1.0]))

    def test_subspace(self):
        sub = self._space().subspace(["b"])
        assert sub.names == ["b"]
        with pytest.raises(KeyError):
            self._space().subspace(["zzz"])

    def test_union_disjoint(self):
        s = self._space()
        other = ParameterSpace([IntParameter("c", 0, 0, 1)])
        assert s.union(other).names == ["a", "b", "c"]

    def test_union_overlap_rejected(self):
        s = self._space()
        with pytest.raises(ValueError):
            s.union(s)

    def test_prefixed(self):
        pre = self._space().prefixed("node0.")
        assert pre.names == ["node0.a", "node0.b"]
        assert pre["node0.b"].default == 100

    def test_clamp_mapping(self):
        s = self._space()
        cfg = s.clamp({"a": 99, "b": 120.0})
        assert cfg == {"a": 10, "b": 100}

    def test_random_configuration_legal(self):
        s = self._space()
        rng = np.random.default_rng(1)
        for _ in range(20):
            s.validate(s.random_configuration(rng))

    def test_extremeness_bounds(self):
        s = self._space()
        assert s.extremeness({"a": 0, "b": 500}) == pytest.approx(1.0)
        centred = {"a": 5, "b": 300}
        assert s.extremeness(centred) == pytest.approx(0.0)

    def test_bounds_vectors(self):
        s = self._space()
        assert list(s.lower_bounds()) == [0.0, 100.0]
        assert list(s.upper_bounds()) == [10.0, 500.0]
