"""Tests for JSON persistence of configurations and histories."""

import io
import json

import pytest

from repro.harmony.history import TuningHistory
from repro.harmony.parameter import Configuration
from repro.util.serialization import (
    configuration_from_json,
    configuration_to_json,
    load_configuration,
    load_history,
    save_configuration,
    save_history,
)


def _config():
    return Configuration({"proxy0.cache_mem": 32, "db0.table_cache": 512})


def _history(n=5):
    h = TuningHistory()
    for i in range(n):
        h.append(Configuration({"a": i, "b": 10 * i}), 100.0 + i)
    return h


class TestConfigurationJson:
    def test_round_trip_string(self):
        cfg = _config()
        assert configuration_from_json(configuration_to_json(cfg)) == cfg

    def test_round_trip_file(self, tmp_path):
        cfg = _config()
        path = tmp_path / "best.json"
        save_configuration(cfg, path)
        assert load_configuration(path) == cfg

    def test_sorted_keys(self):
        text = configuration_to_json(_config())
        keys = list(json.loads(text))
        assert keys == sorted(keys)

    def test_non_object_rejected(self):
        with pytest.raises(ValueError):
            configuration_from_json("[1, 2]")

    def test_non_integer_value_rejected(self):
        with pytest.raises(ValueError):
            configuration_from_json('{"a": 1.5}')
        with pytest.raises(ValueError):
            configuration_from_json('{"a": true}')
        with pytest.raises(ValueError):
            configuration_from_json('{"a": "x"}')


class TestHistoryJson:
    def test_round_trip_file(self, tmp_path):
        h = _history()
        path = tmp_path / "run.jsonl"
        save_history(h, path)
        loaded = load_history(path)
        assert len(loaded) == len(h)
        for a, b in zip(h, loaded):
            assert a.iteration == b.iteration
            assert a.performance == b.performance
            assert a.configuration == b.configuration

    def test_round_trip_stream(self):
        h = _history(3)
        buf = io.StringIO()
        save_history(h, buf)
        buf.seek(0)
        loaded = load_history(buf)
        assert loaded.best().performance == h.best().performance

    def test_blank_lines_skipped(self, tmp_path):
        h = _history(2)
        path = tmp_path / "run.jsonl"
        save_history(h, path)
        path.write_text(path.read_text() + "\n\n")
        assert len(load_history(path)) == 2

    def test_out_of_order_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        rec = {"iteration": 5, "performance": 1.0, "configuration": {"a": 1}}
        path.write_text(json.dumps(rec) + "\n")
        with pytest.raises(ValueError, match="out of order"):
            load_history(path)

    def test_missing_field_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(json.dumps({"iteration": 0, "performance": 1.0}) + "\n")
        with pytest.raises(ValueError, match="missing field"):
            load_history(path)

    def test_empty_file_gives_empty_history(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        assert len(load_history(path)) == 0

    def test_loaded_history_supports_analysis(self, tmp_path):
        """A persisted run stays usable with the analysis tooling."""
        h = _history(10)
        path = tmp_path / "run.jsonl"
        save_history(h, path)
        loaded = load_history(path)
        assert loaded.best_configuration() == h.best_configuration()
        assert loaded.window_stats(5).mean == pytest.approx(
            h.window_stats(5).mean
        )
