"""Tests for generator processes on the simulation kernel."""

import pytest

from repro.sim.core import Environment, Interrupt, SimulationError
from repro.sim.process import Process


class TestProcessBasics:
    def test_sequential_timeouts(self):
        env = Environment()
        trace = []

        def proc():
            yield env.timeout(1.0)
            trace.append(env.now)
            yield env.timeout(2.0)
            trace.append(env.now)

        env.process(proc())
        env.run()
        assert trace == [1.0, 3.0]

    def test_return_value_becomes_event_value(self):
        env = Environment()

        def proc():
            yield env.timeout(1.0)
            return "done"

        p = env.process(proc())
        env.run()
        assert p.value == "done"

    def test_process_waits_on_process(self):
        env = Environment()
        trace = []

        def child():
            yield env.timeout(2.0)
            return 99

        def parent():
            result = yield env.process(child())
            trace.append((env.now, result))

        env.process(parent())
        env.run()
        assert trace == [(2.0, 99)]

    def test_two_processes_interleave(self):
        env = Environment()
        trace = []

        def proc(name, delay):
            yield env.timeout(delay)
            trace.append(name)
            yield env.timeout(delay)
            trace.append(name)

        env.process(proc("a", 1.0))
        env.process(proc("b", 1.5))
        env.run()
        assert trace == ["a", "b", "a", "b"]

    def test_non_generator_rejected(self):
        env = Environment()
        with pytest.raises(SimulationError):
            env.process(lambda: None)  # type: ignore[arg-type]

    def test_yielding_non_event_fails_process(self):
        env = Environment()

        def proc():
            yield 42  # not an event

        p = env.process(proc())
        env.run()
        assert isinstance(p.exception, SimulationError)

    def test_exception_in_process_captured(self):
        env = Environment()

        def proc():
            yield env.timeout(1.0)
            raise ValueError("inside")

        p = env.process(proc())
        env.run()
        assert isinstance(p.exception, ValueError)

    def test_failed_event_raises_in_waiter(self):
        env = Environment()
        caught = []

        def proc():
            ev = env.event()
            ev.fail(RuntimeError("nope"))
            try:
                yield ev
            except RuntimeError as err:
                caught.append(str(err))

        env.process(proc())
        env.run()
        assert caught == ["nope"]

    def test_failed_child_propagates_to_parent(self):
        env = Environment()

        def child():
            yield env.timeout(1.0)
            raise ValueError("child blew up")

        def parent():
            yield env.process(child())

        p = env.process(parent())
        env.run()
        assert isinstance(p.exception, ValueError)

    def test_active_process(self):
        env = Environment()
        seen = []

        def proc():
            seen.append(env.active_process)
            yield env.timeout(0.0)

        p = env.process(proc())
        env.run()
        assert seen == [p]
        assert env.active_process is None


class TestInterrupt:
    def test_interrupt_wakes_sleeper(self):
        env = Environment()
        trace = []

        def sleeper():
            try:
                yield env.timeout(100.0)
            except Interrupt as intr:
                trace.append((env.now, intr.cause))

        def interrupter(target):
            yield env.timeout(3.0)
            target.interrupt("wake up")

        p = env.process(sleeper())
        env.process(interrupter(p))
        env.run()
        assert trace == [(3.0, "wake up")]

    def test_unhandled_interrupt_fails_process(self):
        env = Environment()

        def sleeper():
            yield env.timeout(100.0)

        def interrupter(target):
            yield env.timeout(1.0)
            target.interrupt()

        p = env.process(sleeper())
        env.process(interrupter(p))
        env.run()
        assert isinstance(p.exception, Interrupt)

    def test_interrupt_finished_process_rejected(self):
        env = Environment()

        def quick():
            yield env.timeout(0.5)

        p = env.process(quick())
        env.run()
        with pytest.raises(SimulationError):
            p.interrupt()

    def test_stale_wakeup_ignored_after_interrupt(self):
        """A process interrupted out of a timeout must not be resumed again
        when the original timeout later fires."""
        env = Environment()
        resumed = []

        def sleeper():
            try:
                yield env.timeout(10.0)
                resumed.append("timeout")
            except Interrupt:
                resumed.append("interrupt")
                yield env.timeout(20.0)
                resumed.append("after")

        def interrupter(target):
            yield env.timeout(1.0)
            target.interrupt()

        p = env.process(sleeper())
        env.process(interrupter(p))
        env.run()
        assert resumed == ["interrupt", "after"]
        assert p.triggered
