"""Unit tests for the simulated per-tier server processes."""

import numpy as np
import pytest

from repro.cluster.context import WorkloadContext
from repro.cluster.params import APP_PARAMS, DB_PARAMS, PROXY_PARAMS
from repro.des.servers import AppServerSim, DbServerSim, NodeSim, ProxyServerSim
from repro.cluster.node import DEFAULT_NODE
from repro.sim.core import Environment
from repro.tpcw.catalog import Catalog
from repro.tpcw.interactions import Interaction, ORDERING_MIX, SHOPPING_MIX
from repro.tpcw.profiles import PROFILES


@pytest.fixture(scope="module")
def ctx():
    return WorkloadContext.for_mix(SHOPPING_MIX, Catalog(scale=1000))


def _defaults(params):
    return {p.name: p.default for p in params}


class TestNodeSim:
    def test_memory_penalty_scales_service(self, ctx):
        env = Environment()
        fast = NodeSim(env, "a", DEFAULT_NODE, memory_penalty=1.0)
        slow = NodeSim(env, "b", DEFAULT_NODE, memory_penalty=3.0)
        rng1, rng2 = np.random.default_rng(1), np.random.default_rng(1)
        t_fast = [fast._sample(rng1, 0.01) for _ in range(200)]
        t_slow = [slow._sample(rng2, 0.01) for _ in range(200)]
        assert np.mean(t_slow) == pytest.approx(3 * np.mean(t_fast))

    def test_zero_mean_is_free(self):
        env = Environment()
        node = NodeSim(env, "a", DEFAULT_NODE)
        assert node._sample(np.random.default_rng(0), 0.0) == 0.0

    def test_cpu_generator_occupies_resource(self, ctx):
        env = Environment()
        node = NodeSim(env, "a", DEFAULT_NODE)
        rng = np.random.default_rng(2)

        def proc():
            yield from node.use_cpu(rng, 0.05)

        env.process(proc())
        env.run()
        assert node.cpu.granted == 1
        assert node.cpu.in_service == 0  # released

    def test_reset_stats_clears_nic(self):
        env = Environment()
        node = NodeSim(env, "a", DEFAULT_NODE)
        node.account_nic(1000.0)
        node.reset_stats()
        assert node.nic_bytes == 0.0


class TestProxyServerSim:
    def test_hit_fractions_match_model(self, ctx):
        env = Environment()
        proxy = ProxyServerSim(env, "p", DEFAULT_NODE, _defaults(PROXY_PARAMS), ctx)
        rng = np.random.default_rng(3)
        outcomes = [proxy.classify(rng) for _ in range(20_000)]
        mem_share = outcomes.count("mem") / len(outcomes)
        assert mem_share == pytest.approx(proxy.mem_hit, abs=0.02)
        miss_share = outcomes.count("miss") / len(outcomes)
        assert miss_share == pytest.approx(
            1 - proxy.mem_hit - proxy.disk_hit, abs=0.02
        )

    def test_serve_static_returns_outcome(self, ctx):
        env = Environment()
        proxy = ProxyServerSim(env, "p", DEFAULT_NODE, _defaults(PROXY_PARAMS), ctx)
        rng = np.random.default_rng(4)
        results = []

        def proc():
            out = yield from proxy.serve_static(rng, 8192.0)
            results.append(out)

        env.process(proc())
        env.run()
        assert results[0] in ("mem", "disk", "miss")
        assert proxy.nic_bytes > 0


class TestAppServerSim:
    def test_spawn_cost_zero_when_idle(self, ctx):
        env = Environment()
        app = AppServerSim(env, "a", DEFAULT_NODE, _defaults(APP_PARAMS), ctx)
        # No busy threads -> below the warm pool -> no spawn cost.
        assert app._spawn_cost(np.random.default_rng(0)) == 0.0

    def test_pools_sized_from_config(self, ctx):
        env = Environment()
        cfg = _defaults(APP_PARAMS)
        cfg.update(maxProcessors=7, acceptCount=3, AJPmaxProcessors=9,
                   AJPacceptCount=4)
        app = AppServerSim(env, "a", DEFAULT_NODE, cfg, ctx)
        assert app.http_pool.capacity == 7
        assert app.ajp_pool.capacity == 9

    def test_serve_page_runs_db_callback(self, ctx):
        env = Environment()
        app = AppServerSim(env, "a", DEFAULT_NODE, _defaults(APP_PARAMS), ctx)
        rng = np.random.default_rng(5)
        called = []

        def fake_db():
            called.append(True)
            yield env.timeout(0.01)

        def proc():
            yield from app.serve_page(
                rng, PROFILES[Interaction.BUY_CONFIRM], fake_db
            )

        env.process(proc())
        env.run()
        assert called == [True]
        assert app.http_pool.in_service == 0
        assert app.ajp_pool.in_service == 0


class TestDbServerSim:
    @pytest.fixture()
    def db(self, ctx):
        env = Environment()
        return env, DbServerSim(env, "d", DEFAULT_NODE, _defaults(DB_PARAMS), ctx)

    def test_count_integerizes_fraction(self, ctx):
        rng = np.random.default_rng(6)
        draws = [DbServerSim._count(rng.random(), 1.3) for _ in range(5000)]
        assert set(draws) <= {1, 2}
        assert np.mean(draws) == pytest.approx(1.3, abs=0.03)

    def test_run_queries_completes_and_releases(self, db):
        env, sim = db
        rng = np.random.default_rng(7)

        def proc():
            yield from sim.run_queries(rng, PROFILES[Interaction.BUY_CONFIRM])

        env.process(proc())
        env.run()
        assert sim.conn_pool.in_service == 0
        assert sim.cpu.granted > 0
        assert sim.nic_bytes > 0

    def test_derived_factors(self, ctx):
        env = Environment()
        cfg = _defaults(DB_PARAMS)
        cfg.update(table_cache=1024, binlog_cache_size=1048576,
                   join_buffer_size=131072)
        sim = DbServerSim(env, "d", DEFAULT_NODE, cfg, ctx)
        assert sim.table_miss < 0.05
        assert sim.binlog_spill < 0.001
        assert sim.join_factor > 1.0  # tiny join buffer pays re-scans

    def test_write_heavy_page_costs_more_disk(self, ctx):
        def disk_time(profile, seed):
            env = Environment()
            sim = DbServerSim(env, "d", DEFAULT_NODE, _defaults(DB_PARAMS),
                              WorkloadContext.for_mix(ORDERING_MIX, ctx.catalog))
            rng = np.random.default_rng(seed)

            def proc():
                for _ in range(60):
                    yield from sim.run_queries(rng, profile)

            env.process(proc())
            env.run()
            return sim.disk.busy_stats.mean(env.now) * env.now

        write_heavy = disk_time(PROFILES[Interaction.BUY_CONFIRM], 8)
        read_only = disk_time(PROFILES[Interaction.ORDER_INQUIRY], 8)
        assert write_heavy > read_only
