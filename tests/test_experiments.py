"""Integration tests for the experiment drivers (scaled-down budgets).

These run the actual table/figure pipelines with small iteration counts and
assert the paper's qualitative claims — which method wins, which direction
nodes move, which workload benefits most — rather than absolute numbers.
"""

import pytest

from repro.cluster.node import Role
from repro.experiments import ExperimentConfig
from repro.experiments import ablations, fig4, fig5, fig7, table1, table3, table4

SMALL = ExperimentConfig(
    iterations=60, baseline_iterations=8, population=750,
    cluster_population=1800,
)


class TestTable1:
    def test_splits(self):
        r = table1.run()
        assert r.browse_split["browsing"] == pytest.approx(0.95)
        assert r.browse_split["shopping"] == pytest.approx(0.80)
        assert r.order_split["ordering"] == pytest.approx(0.50)

    def test_table_renders_all_interactions(self):
        text = table1.run().to_table().render()
        for name in ("Home", "Buy Confirm", "Admin Request", "Search Results"):
            assert name in text


@pytest.fixture(scope="module")
def fig4_result():
    return fig4.run(SMALL)


class TestFig4:
    def test_browsing_and_shopping_improve(self, fig4_result):
        assert fig4_result.improvement("browsing") > 0.05
        assert fig4_result.improvement("shopping") > 0.02

    def test_ordering_improvement_is_smallest(self, fig4_result):
        """The paper: ordering's default is 'pretty good' (<= 5% gain)."""
        assert fig4_result.improvement("ordering") < fig4_result.improvement(
            "browsing"
        )

    def test_majority_of_window_beats_default(self, fig4_result):
        assert fig4_result.fraction_above["browsing"] > 0.6

    def test_no_universal_best_configuration(self, fig4_result):
        """At least some cross-application loses to the native tuning —
        the core Figure 4 claim."""
        losses = 0
        for applied in fig4.MIX_ORDER:
            native = fig4_result.cross[(applied, applied)]
            for cfg_mix in fig4.MIX_ORDER:
                if cfg_mix != applied and fig4_result.cross[
                    (cfg_mix, applied)
                ] < native:
                    losses += 1
        assert losses >= 3

    def test_tables_render(self, fig4_result):
        assert "browsing" in fig4_result.to_matrix_table().render()
        assert "%" in fig4_result.to_improvement_table().render()

    def test_table3_renders_all_parameters(self, fig4_result):
        text = table3.render(fig4_result).render()
        for name in ("cache_mem", "maxProcessors", "join_buffer_size",
                     "thread_stack"):
            assert name in text

    def test_table3_proxy_cache_grows_for_browsing(self, fig4_result):
        """Table 3's qualitative movement: browsing tuning raises the
        proxy's memory cache above the 8 MB default."""
        cfg = fig4_result.best_configs["browsing"]
        assert cfg["proxy0.cache_mem"] > 8


class TestFig5:
    def test_adapts_after_switches(self):
        r = fig5.run(SMALL, segment=40)
        assert len(r.wips) == 120
        # Each segment recovers within half its length.
        for start, mix, adapt in r.segments:
            assert adapt <= 20
        assert "Figure 5" in r.to_table().render()
        assert len(r.series_table().rows) > 0

    def test_workload_labels_follow_schedule(self):
        r = fig5.run(SMALL, segment=10,
                     schedule=("browsing", "ordering"))
        assert r.workloads[0] == "browsing"
        assert r.workloads[-1] == "ordering"


@pytest.fixture(scope="module")
def table4_result():
    return table4.run(SMALL)


class TestTable4:
    def test_all_methods_improve(self, table4_result):
        for row in table4_result.rows.values():
            assert row.improvement > 0.0

    def test_duplication_converges_fastest(self, table4_result):
        rows = table4_result.rows
        assert (
            rows["duplication"].iterations_to_converge
            <= rows["default"].iterations_to_converge
        )

    def test_partitioning_stability(self, table4_result):
        """At the full 200-iteration protocol partitioning has the smallest
        second-window σ (see bench/EXPERIMENTS.md); at this reduced budget
        the window is still dominated by exploration, so only assert it is
        not materially *worse* than the default method."""
        rows = table4_result.rows
        assert rows["partitioning"].stddev <= rows["default"].stddev * 1.3

    def test_dimension_bookkeeping(self, table4_result):
        rows = table4_result.rows
        assert rows["default"].tuned_dimensions == 46
        assert rows["duplication"].tuned_dimensions == 23
        assert rows["partitioning"].tuned_dimensions == 23

    def test_render(self, table4_result):
        text = table4_result.to_table().render()
        assert "None (no tuning)" in text
        assert "Parameter duplication" in text


class TestFig7:
    def test_fig7a_moves_proxy_to_app(self):
        r = fig7.run_a(SMALL)
        assert r.decision is not None
        assert r.decision.from_role is Role.PROXY
        assert r.decision.to_role is Role.APP
        assert r.improvement > 0.25

    def test_fig7b_moves_app_to_proxy(self):
        r = fig7.run_b(SMALL)
        assert r.decision is not None
        assert r.decision.from_role is Role.APP
        assert r.decision.to_role is Role.PROXY
        assert r.improvement > 0.25

    def test_series_and_tables(self):
        r = fig7.run_b(SMALL)
        assert len(r.wips) == SMALL.iterations
        assert "improvement" in r.to_table().render()
        assert len(r.series_table().rows) > 0


class TestAblations:
    def test_simplex_beats_or_matches_baselines(self):
        r = ablations.run_strategy_ablation(
            ExperimentConfig(iterations=50, baseline_iterations=6)
        )
        simplex_wips = r.results["simplex"][0]
        assert simplex_wips >= r.baseline
        assert "random" in r.results and "coordinate" in r.results
        assert "Strategy" in r.to_table().render()

    def test_damping_ablation_runs(self):
        r = ablations.run_damping_ablation(
            ExperimentConfig(iterations=40, baseline_iterations=6)
        )
        assert set(r.results) == {"simplex", "simplex-damped"}

    def test_hybrid_tuning_never_worse_than_phase1(self):
        r = ablations.run_hybrid_tuning(
            ExperimentConfig(iterations=40, baseline_iterations=6,
                             cluster_population=1800)
        )
        assert r.hybrid_best >= r.duplication_best
        assert "hybrid" in r.to_table().render()


class TestDrift:
    def test_small_drift_run(self):
        from repro.experiments import drift

        result = drift.run(ExperimentConfig(iterations=45))
        assert len(result.blend) == 45
        # Blend ramps monotonically 0 -> 1.
        assert result.blend[0] == 0.0
        assert result.blend[-1] == 1.0
        assert all(a <= b for a, b in zip(result.blend, result.blend[1:]))
        # The tuner helps while the workload is browsing-like.
        n = len(result.blend)
        assert result.advantage_over_window(5, n // 3) > 0.0
        assert "drift" in result.to_table().render().lower()
        assert "*" in result.chart()


class TestRobustness:
    def test_noise_sweep_small(self):
        from repro.experiments.robustness import run_noise_sweep

        result = run_noise_sweep(
            ExperimentConfig(iterations=40, baseline_iterations=4),
            sigmas=(0.01, 0.05),
        )
        assert len(result.rows) == 2
        assert result.gain(0.01) > 0.0
        assert "noise" in result.to_table().render()

    def test_load_sweep_small(self):
        from repro.experiments.robustness import run_load_sweep

        result = run_load_sweep(
            ExperimentConfig(iterations=40, baseline_iterations=4),
            populations=(300, 900),
        )
        gains = result.gains()
        assert gains[0] < 0.05  # unsaturated: nothing to tune
        assert gains[1] > gains[0]
        assert "load" in result.to_table().render()
