"""Tests for the iteration runner and cluster tuning sessions."""

import pytest

from repro.cluster.node import Role
from repro.cluster.topology import ClusterSpec
from repro.model.analytic import AnalyticBackend
from repro.model.base import Scenario
from repro.model.noise import NoiseModel
from repro.tpcw.interactions import BROWSING_MIX, ORDERING_MIX, SHOPPING_MIX
from repro.tuning.iteration import IterationRunner, IterationSpec
from repro.tuning.session import ClusterTuningSession, make_scheme


@pytest.fixture()
def backend():
    return AnalyticBackend()


@pytest.fixture()
def scenario():
    return Scenario(
        cluster=ClusterSpec.three_tier(1, 1, 1),
        mix=BROWSING_MIX,
        population=750,
    )


class TestIterationSpec:
    def test_paper_defaults(self):
        spec = IterationSpec()
        assert spec.warmup == 100.0
        assert spec.measure == 1000.0
        assert spec.cooldown == 100.0
        assert spec.total == 1200.0

    def test_validation(self):
        with pytest.raises(ValueError):
            IterationSpec(measure=0.0)
        with pytest.raises(ValueError):
            IterationSpec(warmup=-1.0)

    def test_scaled(self):
        spec = IterationSpec().scaled(0.1)
        assert spec.measure == 100.0
        with pytest.raises(ValueError):
            IterationSpec().scaled(0.0)


class TestIterationRunner:
    def test_counter_advances(self, backend, scenario):
        runner = IterationRunner(backend, scenario, seed=1)
        cfg = scenario.cluster.default_configuration()
        runner.run(cfg)
        runner.run(cfg)
        assert runner.iterations_run == 2

    def test_same_index_same_noise(self, backend, scenario):
        runner = IterationRunner(backend, scenario, seed=1)
        cfg = scenario.cluster.default_configuration()
        a = runner.run(cfg, index=3)
        b = runner.run(cfg, index=3)
        assert a.wips == b.wips
        assert runner.iterations_run == 0  # explicit index doesn't count

    def test_different_indices_different_noise(self, backend, scenario):
        runner = IterationRunner(backend, scenario, seed=1)
        cfg = scenario.cluster.default_configuration()
        assert runner.run(cfg, index=0).wips != runner.run(cfg, index=1).wips


class TestMakeScheme:
    def test_default(self, scenario):
        scheme = make_scheme(scenario, "default")
        assert len(scheme.groups) == 1
        assert scheme.groups[0].space.dimension == 23

    def test_duplication(self):
        sc = Scenario(
            cluster=ClusterSpec.three_tier(2, 2, 2),
            mix=SHOPPING_MIX, population=100,
        )
        scheme = make_scheme(sc, "duplication")
        assert scheme.groups[0].space.dimension == 23  # tier-level
        full = sc.cluster.full_space()
        assert scheme.total_tuned_dimensions < full.dimension

    def test_partitioning(self):
        sc = Scenario(
            cluster=ClusterSpec.three_tier(2, 2, 2),
            mix=SHOPPING_MIX, population=100,
        )
        scheme = make_scheme(sc, "partitioning", work_lines=2)
        assert len(scheme.groups) == 2

    def test_unknown_method(self, scenario):
        with pytest.raises(ValueError):
            make_scheme(scenario, "magic")


class TestClusterTuningSession:
    def test_step_records_history(self, backend, scenario):
        session = ClusterTuningSession(backend, scenario, seed=2)
        m = session.step()
        assert session.iterations == 1
        assert session.history[0].performance == m.wips

    def test_first_configuration_is_default(self, backend, scenario):
        session = ClusterTuningSession(backend, scenario, seed=2)
        assert session.current_configuration() == (
            scenario.cluster.default_configuration()
        )

    def test_tuning_improves_browsing(self, backend, scenario):
        """The §III.A claim at small scale: tuning beats the default."""
        session = ClusterTuningSession(
            backend, scenario,
            scheme=make_scheme(scenario, "default"), seed=3,
        )
        baseline = session.measure_baseline(iterations=10).window_stats(0)
        session.run(80)
        assert session.history.best().performance > baseline.mean * 1.05

    def test_run_validation(self, backend, scenario):
        session = ClusterTuningSession(backend, scenario, seed=2)
        with pytest.raises(ValueError):
            session.run(-1)

    def test_partitioned_session_wires_work_lines(self, backend):
        sc = Scenario(
            cluster=ClusterSpec.three_tier(2, 2, 2),
            mix=SHOPPING_MIX, population=600,
        )
        session = ClusterTuningSession(
            backend, sc, scheme=make_scheme(sc, "partitioning"), seed=4
        )
        assert session.scenario.work_lines is not None
        m = session.step()
        assert set(m.per_line_wips) == {"line0", "line1"}
        # Each group's history carries its own line's signal.
        for line in ("line0", "line1"):
            assert session.group_history(line)[0].performance == pytest.approx(
                m.per_line_wips[line]
            )

    def test_duplication_session_copies_values(self, backend):
        sc = Scenario(
            cluster=ClusterSpec.three_tier(2, 2, 2),
            mix=SHOPPING_MIX, population=600,
        )
        session = ClusterTuningSession(
            backend, sc, scheme=make_scheme(sc, "duplication"), seed=5
        )
        session.step()
        cfg = session.history[0].configuration
        assert cfg["proxy0.cache_mem"] == cfg["proxy1.cache_mem"]
        assert cfg["app0.maxProcessors"] == cfg["app1.maxProcessors"]

    def test_set_mix(self, backend, scenario):
        session = ClusterTuningSession(backend, scenario, seed=6)
        session.set_mix(ORDERING_MIX)
        assert session.scenario.mix is ORDERING_MIX
        assert session.runner.scenario.mix is ORDERING_MIX

    def test_set_cluster_requires_duplication(self, backend, scenario):
        session = ClusterTuningSession(backend, scenario, seed=7)
        with pytest.raises(TypeError):
            session.set_cluster(ClusterSpec.three_tier(1, 2, 1))

    def test_set_cluster_rebinds_duplication(self, backend):
        cluster = ClusterSpec.three_tier(2, 2, 2)
        sc = Scenario(cluster=cluster, mix=ORDERING_MIX, population=900)
        session = ClusterTuningSession(
            backend, sc, scheme=make_scheme(sc, "duplication"), seed=8
        )
        session.step()
        moved = cluster.move_node("proxy1", Role.APP)
        session.set_cluster(moved)
        m = session.step()  # must measure cleanly on the new layout
        assert m.wips > 0
        cfg = session.history[1].configuration
        # The moved node now carries app-tier values.
        assert "proxy1.maxProcessors" in cfg
        assert cfg["proxy1.maxProcessors"] == cfg["app0.maxProcessors"]

    def test_measure_baseline_uses_fixed_config(self, backend, scenario):
        session = ClusterTuningSession(backend, scenario, seed=9)
        history = session.measure_baseline(iterations=5)
        assert len(history) == 5
        assert len({r.configuration for r in history}) == 1
        assert session.iterations == 0  # tuner untouched
